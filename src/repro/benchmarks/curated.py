"""Curated benchmarks: the paper's own published examples.

* ``academic/motivating`` — the Section-2 SemMedDB pair (Figures 2-4): the
  WITH-pipeline Cypher query double counts relative to the IN-subquery SQL
  query; Graphiti refutes it (the paper's flagship bug).
* ``academic/motivating-fixed`` — the Appendix-C corrected Cypher query
  using EXISTS, equivalent to the same SQL.
* ``tutorial/neo4j-volume`` — the Neo4j-tutorial bug from Appendix D(2):
  OPTIONAL MATCH over a whole path vs chained LEFT JOINs, not equivalent
  because dangling intermediate rows survive on the SQL side.
* ``veriql/emp-dept-join`` — the Appendix D(3) bug: the student's Cypher
  traverses WORK_AT although the SQL join relates EmpNo to DeptNo directly;
  the paper's Figure-23 counterexample refutes it.
* ``tutorial/emp-count`` — Example 3.4's department head-count query, a
  correct translation over the Figure-14 schema.
"""

from __future__ import annotations

from repro.benchmarks.spec import Benchmark, EdgeTableMap, MergedEdgeMap, NodeMap, Universe
from repro.graph.schema import EdgeType, GraphSchema, NodeType
from repro.relational.schema import (
    ForeignKey,
    IntegrityConstraints,
    NotNull,
    PrimaryKey,
    Relation,
    RelationalSchema,
)


def _schema(relations, pks, fks=(), nns=()):
    return RelationalSchema.of(
        relations,
        IntegrityConstraints(
            tuple(PrimaryKey(r, a) for r, a in pks),
            tuple(ForeignKey(r, a, r2, a2) for r, a, r2, a2 in fks),
            tuple(NotNull(r, a) for r, a in nns),
        ),
    )


# ---------------------------------------------------------------------------
# SemMedDB (Figures 2-5)
# ---------------------------------------------------------------------------

SEMMED = Universe(
    name="semmed",
    graph_schema=GraphSchema.of(
        [
            NodeType("CONCEPT", ("CID", "NAME")),
            NodeType("PA", ("PID", "PACSID")),
            NodeType("SENTENCE", ("SID", "PMID")),
        ],
        [
            EdgeType("CS", "CONCEPT", "PA", ("CSID",)),
            EdgeType("SP", "PA", "SENTENCE", ("SPID",)),
        ],
    ),
    relational_schema=_schema(
        [
            Relation("Concept", ("CID", "NAME")),
            Relation("Cs", ("CSID", "CsCID", "CsPID")),
            Relation("Pa", ("PID", "PACSID")),
            Relation("Sp", ("SPID", "SpPID", "SpSID")),
            Relation("Sentence", ("SID", "PMID")),
        ],
        pks=[
            ("Concept", "CID"),
            ("Cs", "CSID"),
            ("Pa", "PID"),
            ("Sp", "SPID"),
            ("Sentence", "SID"),
        ],
        fks=[
            ("Cs", "CsCID", "Concept", "CID"),
            ("Cs", "CsPID", "Pa", "PID"),
            ("Sp", "SpPID", "Pa", "PID"),
            ("Sp", "SpSID", "Sentence", "SID"),
        ],
        nns=[
            ("Cs", "CsCID"),
            ("Cs", "CsPID"),
            ("Sp", "SpPID"),
            ("Sp", "SpSID"),
        ],
    ),
    transformer_text="""
        CONCEPT(cid, name) -> Concept(cid, name)
        CS(csid, cid, pid) -> Cs(csid, cid, pid)
        PA(pid, pacsid) -> Pa(pid, pacsid)
        SP(spid, pid, sid) -> Sp(spid, pid, sid)
        SENTENCE(sid, pmid) -> Sentence(sid, pmid)
    """,
    nodes={
        "CONCEPT": NodeMap("CONCEPT", "Concept", {"CID": "CID", "NAME": "NAME"}),
        "PA": NodeMap("PA", "Pa", {"PID": "PID", "PACSID": "PACSID"}),
        "SENTENCE": NodeMap("SENTENCE", "Sentence", {"SID": "SID", "PMID": "PMID"}),
    },
    edges={
        "CS": EdgeTableMap("CS", "Cs", {"CSID": "CSID"}, "CsCID", "CsPID"),
        "SP": EdgeTableMap("SP", "Sp", {"SPID": "SPID"}, "SpPID", "SpSID"),
    },
)

_MOTIVATING_SQL = """
SELECT c2.CsCID, COUNT(*) FROM Cs AS c2, Pa AS p2, Sp AS s2
WHERE c2.CsPID = p2.PID AND s2.SpPID = p2.PID AND s2.SpSID IN (
    SELECT s1.SpSID FROM Cs AS c1, Pa AS p1, Sp AS s1
    WHERE c1.CsPID = p1.PID AND s1.SpPID = p1.PID AND c1.CsCID = 1)
GROUP BY c2.CsCID
"""

_MOTIVATING_CYPHER = """
MATCH (c1:CONCEPT {CID: 1})-[r1:CS]->(p1:PA)-[r2:SP]->(s:SENTENCE)
WITH s
MATCH (s:SENTENCE)<-[r3:SP]-(p2:PA)<-[r4:CS]-(c2:CONCEPT)
RETURN c2.CID, Count(*)
"""

_MOTIVATING_CYPHER_FIXED = """
MATCH (s:SENTENCE)<-[r3:SP]-(p2:PA)<-[r4:CS]-(c2:CONCEPT)
WHERE EXISTS { MATCH (c1:CONCEPT {CID: 1})-[r1:CS]->(p1:PA)-[r2:SP]->(s:SENTENCE) }
RETURN c2.CID, Count(*)
"""


# ---------------------------------------------------------------------------
# Northwind slice (Appendix D example 2 — the Neo4j tutorial bug)
# ---------------------------------------------------------------------------

NORTHWIND = Universe(
    name="northwind",
    graph_schema=GraphSchema.of(
        [
            NodeType("CUST", ("CustomerID", "CompanyName")),
            NodeType("ORD", ("OrderID", "Freight")),
            NodeType("PROD", ("ProductID", "ProductName")),
        ],
        [
            EdgeType("PURCHASED", "CUST", "ORD", ("PuID",)),
            EdgeType("ORDERDETAILS", "ORD", "PROD", ("OdID", "UnitPrice", "Quantity")),
        ],
    ),
    relational_schema=_schema(
        [
            Relation("Customers", ("CustomerID", "CompanyName")),
            Relation("Orders", ("OrderID", "Freight", "OCustomerID")),
            Relation("OrderDetails", ("OdID", "UnitPrice", "Quantity", "OOrderID", "OProductID")),
            Relation("Products", ("ProductID", "ProductName")),
        ],
        pks=[
            ("Customers", "CustomerID"),
            ("Orders", "OrderID"),
            ("OrderDetails", "OdID"),
            ("Products", "ProductID"),
        ],
        fks=[
            ("Orders", "OCustomerID", "Customers", "CustomerID"),
            ("OrderDetails", "OOrderID", "Orders", "OrderID"),
            ("OrderDetails", "OProductID", "Products", "ProductID"),
        ],
        nns=[
            ("Orders", "OCustomerID"),
            ("OrderDetails", "OOrderID"),
            ("OrderDetails", "OProductID"),
        ],
    ),
    transformer_text="""
        CUST(cid, cname) -> Customers(cid, cname)
        ORD(oid, freight), PURCHASED(puid, cid, oid) -> Orders(oid, freight, cid)
        ORDERDETAILS(odid, price, qty, oid, prid) -> OrderDetails(odid, price, qty, oid, prid)
        PROD(prid, prname) -> Products(prid, prname)
    """,
    nodes={
        "CUST": NodeMap("CUST", "Customers", {"CustomerID": "CustomerID", "CompanyName": "CompanyName"}),
        "ORD": NodeMap("ORD", "Orders", {"OrderID": "OrderID", "Freight": "Freight"}),
        "PROD": NodeMap("PROD", "Products", {"ProductID": "ProductID", "ProductName": "ProductName"}),
    },
    edges={
        "PURCHASED": MergedEdgeMap("PURCHASED", "target", "OCustomerID"),
        "ORDERDETAILS": EdgeTableMap(
            "ORDERDETAILS",
            "OrderDetails",
            {"OdID": "OdID", "UnitPrice": "UnitPrice", "Quantity": "Quantity"},
            "OOrderID",
            "OProductID",
        ),
    },
)

_NEO4J_VOLUME_SQL = """
SELECT P.ProductName, SUM(OD.UnitPrice * OD.Quantity) AS Volume
FROM Customers AS C
LEFT JOIN Orders AS O ON C.CustomerID = O.OCustomerID
LEFT JOIN OrderDetails AS OD ON O.OrderID = OD.OOrderID
LEFT JOIN Products AS P ON OD.OProductID = P.ProductID
WHERE C.CompanyName = 'Drachenblut Delikatessen'
GROUP BY P.ProductName
"""

_NEO4J_VOLUME_CYPHER = """
MATCH (C:CUST {CompanyName: 'Drachenblut Delikatessen'})
OPTIONAL MATCH (C:CUST)-[pu:PURCHASED]->(O:ORD)-[OD:ORDERDETAILS]->(P:PROD)
RETURN P.ProductName, Sum(OD.UnitPrice * OD.Quantity) AS Volume
"""


# ---------------------------------------------------------------------------
# VeriEQL EMP/DEPT (Appendix D example 3, Figure 23)
# ---------------------------------------------------------------------------

VERIEQL_EMP = Universe(
    name="veriql_emp",
    graph_schema=GraphSchema.of(
        [
            NodeType("EMP", ("EmpNo", "EName", "EDeptNo")),
            NodeType("DEPT", ("DeptNo", "DName")),
        ],
        [EdgeType("WORK_AT", "EMP", "DEPT", ("WaID",))],
    ),
    relational_schema=_schema(
        [
            Relation("EMPT", ("EmpNo", "EName", "DeptNo")),
            Relation("DEPTT", ("DDeptNo", "DName")),
        ],
        pks=[("EMPT", "EmpNo"), ("DEPTT", "DDeptNo")],
    ),
    transformer_text="""
        EMP(eno, ename, dno) -> EMPT(eno, ename, dno)
        DEPT(dno, dname) -> DEPTT(dno, dname)
    """,
    nodes={
        "EMP": NodeMap("EMP", "EMPT", {"EmpNo": "EmpNo", "EName": "EName", "EDeptNo": "DeptNo"}),
        "DEPT": NodeMap("DEPT", "DEPTT", {"DeptNo": "DDeptNo", "DName": "DName"}),
    },
    edges={},
)

_VERIEQL_EMP_SQL = """
SELECT t0.EmpNo, t0.DeptNo, t1.DDeptNo AS DeptNo0 FROM (
    SELECT EmpNo, EName, DeptNo, DeptNo + EmpNo AS f9 FROM EMPT WHERE EmpNo = 10
) AS t0 JOIN (
    SELECT DDeptNo, DName, DDeptNo + 5 AS f2 FROM DEPTT
) AS t1 ON t0.EmpNo = t1.DDeptNo AND t0.f9 = t1.f2
"""

_VERIEQL_EMP_CYPHER = """
MATCH (t0:EMP {EmpNo: 10})-[w:WORK_AT]->(t1:DEPT)
WHERE t1.DeptNo + t0.EmpNo = t1.DeptNo + 5
RETURN t0.EmpNo, t1.DeptNo, t1.DeptNo AS DeptNo0
"""


# ---------------------------------------------------------------------------
# EMP/DEPT head-count (Example 3.4, Figures 14-15)
# ---------------------------------------------------------------------------

EMP_DEPT = Universe(
    name="emp_dept",
    graph_schema=GraphSchema.of(
        [
            NodeType("EMP", ("id", "name")),
            NodeType("DEPT", ("dnum", "dname")),
        ],
        [EdgeType("WORK_AT", "EMP", "DEPT", ("wid",))],
    ),
    relational_schema=_schema(
        [
            Relation("emp", ("id", "name")),
            Relation("work_at", ("wid", "SRC_", "TGT_")),
            Relation("dept", ("dnum", "dname")),
        ],
        pks=[("emp", "id"), ("work_at", "wid"), ("dept", "dnum")],
        fks=[("work_at", "SRC_", "emp", "id"), ("work_at", "TGT_", "dept", "dnum")],
        nns=[("work_at", "SRC_"), ("work_at", "TGT_")],
    ),
    transformer_text="""
        EMP(id, name) -> emp(id, name)
        WORK_AT(wid, src, tgt) -> work_at(wid, src, tgt)
        DEPT(dnum, dname) -> dept(dnum, dname)
    """,
    nodes={
        "EMP": NodeMap("EMP", "emp", {"id": "id", "name": "name"}),
        "DEPT": NodeMap("DEPT", "dept", {"dnum": "dnum", "dname": "dname"}),
    },
    edges={
        "WORK_AT": EdgeTableMap("WORK_AT", "work_at", {"wid": "wid"}, "SRC_", "TGT_"),
    },
)

_EMP_COUNT_CYPHER = """
MATCH (n:EMP)-[e:WORK_AT]->(m:DEPT)
RETURN m.dname AS name, Count(n) AS num
"""

_EMP_COUNT_SQL = """
SELECT d.dname AS name, COUNT(*) AS num
FROM emp AS e, work_at AS w, dept AS d
WHERE w.SRC_ = e.id AND w.TGT_ = d.dnum
GROUP BY d.dname
"""


# ---------------------------------------------------------------------------
# Assembled curated benchmarks
# ---------------------------------------------------------------------------


def curated_benchmarks() -> list[Benchmark]:
    """All benchmarks lifted directly from the paper's text."""
    return [
        Benchmark(
            id="academic/motivating",
            category="Academic",
            universe=SEMMED,
            cypher_text=_MOTIVATING_CYPHER.strip(),
            sql_text=_MOTIVATING_SQL.strip(),
            expected_equivalent=False,
            bug_class="double-count",
            features=frozenset({"agg", "with", "exists"}),
            notes="Section 2 motivating example (Lin et al. translation bug)",
        ),
        Benchmark(
            id="academic/motivating-fixed",
            category="Academic",
            universe=SEMMED,
            cypher_text=_MOTIVATING_CYPHER_FIXED.strip(),
            sql_text=_MOTIVATING_SQL.strip(),
            expected_equivalent=True,
            features=frozenset({"agg", "exists"}),
            notes="Appendix C corrected query",
        ),
        Benchmark(
            id="tutorial/neo4j-volume",
            category="Tutorial",
            universe=NORTHWIND,
            cypher_text=_NEO4J_VOLUME_CYPHER.strip(),
            sql_text=_NEO4J_VOLUME_SQL.strip(),
            expected_equivalent=False,
            bug_class="optional-path-misuse",
            features=frozenset({"agg", "opt"}),
            notes="Appendix D(2): Neo4j tutorial bug (whole-path OPTIONAL MATCH)",
        ),
        Benchmark(
            id="veriql/emp-dept-join",
            category="VeriEQL",
            universe=VERIEQL_EMP,
            cypher_text=_VERIEQL_EMP_CYPHER.strip(),
            sql_text=_VERIEQL_EMP_SQL.strip(),
            expected_equivalent=False,
            bug_class="wrong-relationship",
            features=frozenset({"arith", "multimatch"}),
            notes="Appendix D(3): WORK_AT traversal vs direct EmpNo/DeptNo join (Fig. 23)",
        ),
        Benchmark(
            id="tutorial/emp-count",
            category="Tutorial",
            universe=EMP_DEPT,
            cypher_text=_EMP_COUNT_CYPHER.strip(),
            sql_text=_EMP_COUNT_SQL.strip(),
            expected_equivalent=True,
            features=frozenset({"agg"}),
            notes="Example 3.4 / Figures 14-15 head-count query",
        ),
    ]
