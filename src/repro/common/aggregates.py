"""Aggregate combination shared by the Cypher and SQL evaluators.

The paper gives one definition of ``Count/Sum/Avg/Min/Max`` (Appendix A) and
relies on the SQL side (VeriEQL's semantics) matching it.  Keeping a single
implementation here guarantees the two reference evaluators in this library
agree by construction — which Theorem 5.7 (soundness of transpilation)
depends on.

Paper quirks faithfully preserved:

* an aggregate over a group whose argument is NULL on **every** row yields
  NULL (including ``Count``, which standard SQL would report as 0);
* ``Avg = Sum / Count`` with true division.
"""

from __future__ import annotations

from typing import Iterable

from repro.common.values import NULL, Value, is_null


def combine(function: str, values: Iterable[Value], distinct: bool = False) -> Value:
    """Fold *values* (one per group member) with aggregate *function*.

    Type-incompatible inputs (e.g. ``SUM`` over strings mixed with numbers)
    raise :class:`~repro.common.errors.SemanticsError`, which the bounded
    checker treats as "skip this instance" — mirroring how an SMT backend
    would never construct ill-typed instances in the first place.
    """
    from repro.common.errors import SemanticsError

    collected = list(values)
    if all(is_null(v) for v in collected):
        return NULL
    non_null = [v for v in collected if not is_null(v)]
    if distinct:
        non_null = _dedup(non_null)
    try:
        if function == "Count":
            return len(non_null)
        if function == "Sum":
            return _sum(non_null)
        if function == "Avg":
            total = _sum(non_null)
            if is_null(total):
                return NULL
            return total / len(non_null)
        if function == "Min":
            return min(non_null)
        if function == "Max":
            return max(non_null)
    except TypeError as error:
        raise SemanticsError(f"{function} over incompatible values: {error}") from None
    raise ValueError(f"unknown aggregate function {function!r}")


def count_rows(row_count: int) -> Value:
    """``Count(*)`` — counts rows regardless of NULLs; 0 stays 0."""
    return row_count


def _sum(values: list[Value]) -> Value:
    total: Value = 0
    for value in values:
        total += value  # type: ignore[operator]
    return total


def _dedup(values: list[Value]) -> list[Value]:
    seen: set[Value] = set()
    out: list[Value] = []
    for value in values:
        if value not in seen:
            seen.add(value)
            out.append(value)
    return out
