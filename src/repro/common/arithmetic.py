"""Scalar arithmetic shared by the Cypher and SQL evaluators.

NULL propagates through every operator.  Integer division truncates toward
zero (matching SQLite and Neo4j); division by zero yields NULL so the
reference evaluators stay total.
"""

from __future__ import annotations

import math

from repro.common.values import NULL, Value, is_null


def apply_binary(op: str, left: Value, right: Value) -> Value:
    """Evaluate ``left op right`` with NULL propagation.

    Type mismatches raise :class:`~repro.common.errors.SemanticsError` so
    callers (notably the bounded checker) can skip ill-typed instances.
    """
    from repro.common.errors import SemanticsError

    if is_null(left) or is_null(right):
        return NULL
    try:
        if op == "+":
            return left + right  # type: ignore[operator]
        if op == "-":
            return left - right  # type: ignore[operator]
        if op == "*":
            return left * right  # type: ignore[operator]
        if op == "/":
            return _divide(left, right)
        if op == "%":
            return _modulo(left, right)
    except TypeError as error:
        raise SemanticsError(f"arithmetic over incompatible values: {error}") from None
    raise ValueError(f"unknown arithmetic operator {op!r}")


def _divide(left: Value, right: Value) -> Value:
    if right == 0:
        return NULL
    if isinstance(left, int) and isinstance(right, int):
        return int(left / right)  # truncate toward zero, like SQLite / Neo4j
    return left / right  # type: ignore[operator]


def _modulo(left: Value, right: Value) -> Value:
    if right == 0:
        return NULL
    if isinstance(left, int) and isinstance(right, int):
        return int(math.fmod(left, right))
    return math.fmod(left, right)  # type: ignore[arg-type]
