"""Exception hierarchy for the Graphiti reproduction.

Every error raised by this library derives from :class:`GraphitiError`, so
callers can catch a single base class at API boundaries.  The subclasses map
onto pipeline stages: parsing, schema validation, query evaluation,
transformer application, and transpilation.
"""

from __future__ import annotations


class GraphitiError(Exception):
    """Base class for every error raised by this library."""


class ParseError(GraphitiError):
    """A surface-syntax string could not be parsed.

    Carries enough positional information to produce a useful diagnostic.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        self.line = line
        self.column = column
        if line or column:
            message = f"{message} (at line {line}, column {column})"
        super().__init__(message)


class SchemaError(GraphitiError):
    """A schema is ill-formed, or an instance violates its schema."""


class SemanticsError(GraphitiError):
    """A query is ill-typed or references unknown names during evaluation."""


class TransformerError(GraphitiError):
    """A database transformer is ill-formed or cannot be applied."""


class TranspileError(GraphitiError):
    """The syntax-directed transpiler cannot translate a construct."""


class UnsupportedError(GraphitiError):
    """A query falls outside the fragment supported by a backend.

    The deductive backend raises (or records) this for aggregations and outer
    joins, mirroring Mediator's supported fragment in the paper's Section 6.2.
    """
