"""Value domain and three-valued logic shared by Cypher and SQL semantics.

Both query languages in the paper evaluate expressions over a common scalar
domain (integers, floats, strings, booleans) extended with ``Null``.  Boolean
predicates follow SQL's three-valued logic (3VL): comparisons involving
``Null`` yield ``Null``, ``AND``/``OR`` absorb in the usual Kleene fashion
(paper Appendix A, "Semantics of predicates").

``Null`` is modelled as a dedicated singleton rather than Python's ``None``
so that accidental propagation of ``None`` from unrelated code is caught
early, and so that ``NULL`` can participate in sorting and hashing with a
well-defined order (it sorts before every other value, matching the bounded
checker's canonicalisation needs).
"""

from __future__ import annotations

from typing import Union


class Null:
    """Singleton marker for SQL/Cypher ``NULL``.

    All instances compare equal to each other and unequal to every scalar.
    Use the module-level :data:`NULL` instance; constructing more is allowed
    (they behave identically) but never necessary.
    """

    _instance: "Null | None" = None

    def __new__(cls) -> "Null":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "NULL"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Null)

    def __hash__(self) -> int:
        return hash("__graphiti_null__")

    def __bool__(self) -> bool:
        return False


NULL = Null()

#: Scalars a property key or table cell may hold.
Value = Union[int, float, str, bool, Null]

#: Result of a 3VL predicate: True, False, or NULL ("unknown").
Truth = Union[bool, Null]


def is_null(value: object) -> bool:
    """Return ``True`` iff *value* is the ``NULL`` marker."""
    return isinstance(value, Null)


def truth_value(value: object) -> Truth:
    """Coerce an evaluation result into a 3VL truth value.

    Numbers follow SQL's convention: zero is false, non-zero is true.
    """
    if is_null(value):
        return NULL
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)):
        return value != 0
    raise TypeError(f"cannot interpret {value!r} as a truth value")


def sql_and(left: Truth, right: Truth) -> Truth:
    """Kleene conjunction: ``FALSE AND NULL = FALSE``."""
    if left is False or right is False:
        return False
    if is_null(left) or is_null(right):
        return NULL
    return True


def sql_or(left: Truth, right: Truth) -> Truth:
    """Kleene disjunction: ``TRUE OR NULL = TRUE``."""
    if left is True or right is True:
        return True
    if is_null(left) or is_null(right):
        return NULL
    return False


def sql_not(operand: Truth) -> Truth:
    """Kleene negation: ``NOT NULL = NULL``."""
    if is_null(operand):
        return NULL
    return not operand


def value_eq(left: Value, right: Value) -> Truth:
    """3VL equality: ``NULL = anything`` is ``NULL``."""
    if is_null(left) or is_null(right):
        return NULL
    if isinstance(left, bool) != isinstance(right, bool):
        return False
    if _comparable(left, right):
        return left == right
    return left == right if type(left) is type(right) else False


def value_lt(left: Value, right: Value) -> Truth:
    """3VL less-than.  Mixed numeric types compare numerically; ordering
    values from different domains raises a catchable
    :class:`~repro.common.errors.SemanticsError`."""
    from repro.common.errors import SemanticsError

    if is_null(left) or is_null(right):
        return NULL
    if _comparable(left, right):
        return left < right  # type: ignore[operator]
    raise SemanticsError(f"cannot order {left!r} and {right!r}")


def _comparable(left: Value, right: Value) -> bool:
    """Whether two non-null scalars live in the same ordered domain."""
    numeric = (int, float)
    if isinstance(left, numeric) and isinstance(right, numeric):
        return True
    return isinstance(left, str) and isinstance(right, str)


def sort_key(value: Value) -> tuple:
    """Total order over the value domain, used for canonicalisation.

    ``NULL`` sorts first, then booleans, then numbers, then strings.  The
    order is arbitrary but fixed, which is all the bounded checker and
    ``ORDER BY`` tie-breaking need.
    """
    if is_null(value):
        return (0, "")
    if isinstance(value, bool):
        return (1, value)
    if isinstance(value, (int, float)):
        return (2, value)
    return (3, value)
