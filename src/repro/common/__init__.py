"""Shared foundations: value domain, three-valued logic, and error types."""

from repro.common.errors import (
    GraphitiError,
    ParseError,
    SchemaError,
    SemanticsError,
    TranspileError,
    TransformerError,
    UnsupportedError,
)
from repro.common.values import (
    NULL,
    Null,
    Value,
    is_null,
    sql_and,
    sql_not,
    sql_or,
    truth_value,
    value_eq,
    value_lt,
)

__all__ = [
    "GraphitiError",
    "ParseError",
    "SchemaError",
    "SemanticsError",
    "TranspileError",
    "TransformerError",
    "UnsupportedError",
    "NULL",
    "Null",
    "Value",
    "is_null",
    "sql_and",
    "sql_not",
    "sql_or",
    "truth_value",
    "value_eq",
    "value_lt",
]
