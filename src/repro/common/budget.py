"""Query resource budgets: row, recursion-depth, and wall-clock limits.

A :class:`QueryBudget` describes how much work one query is allowed to do;
a :class:`BudgetTracker` carries the running totals while that query
executes.  The same budget is enforced at every layer that can do work
without bound:

* the reference evaluator's semi-naive fixpoint
  (:func:`repro.sql.semantics.evaluate_query`) charges rounds and
  accumulated rows per iteration,
* the engine adapters install native guards
  (sqlite ``set_progress_handler`` / duckdb ``interrupt``) for the
  wall-clock limit and fetch incrementally for the row limit, and
* the serving layer (:class:`repro.backends.service.GraphitiService`)
  checks the clock between retries and plan downgrades.

Exceeding any dimension raises :class:`QueryBudgetExceeded`, which carries
partial-progress diagnostics (rows produced, depth reached, elapsed time)
so operators can see *how far* a runaway query got before the guard fired.
Interrupting a query must never poison its connection: guards abort the
statement, not the session, and the serving layer validates the member
before returning it to the pool.

This module lives under ``repro.common`` (not ``repro.backends``) because
the reference evaluator in ``repro.sql`` needs it too and must not import
the backends package.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from repro.common.errors import GraphitiError


class QueryBudgetExceeded(GraphitiError):
    """A query hit its :class:`QueryBudget` and was stopped.

    Structured fields describe which limit fired and how far the query got:

    ``dimension``
        ``"rows"``, ``"depth"``, or ``"timeout"``.
    ``limit``
        The configured bound for that dimension.
    ``rows_produced`` / ``depth_reached`` / ``elapsed_seconds``
        Partial progress at the moment the guard fired (``None`` when the
        enforcing layer cannot observe that dimension — e.g. an engine
        interrupt knows elapsed time but not the recursion depth).
    ``stage``
        Which layer stopped the query (``"fixpoint"``, ``"engine"``,
        ``"service"``).
    ``backend`` / ``cypher_text``
        Serving context, filled in by the service when available.
    ``attempted_downgrade``
        True when the service already tried a cheaper plan (e.g. re-planned
        an unrolled traversal as a recursive CTE) and the budget still
        fired.
    """

    def __init__(
        self,
        message: str,
        *,
        dimension: str,
        limit: float | int | None = None,
        rows_produced: int | None = None,
        depth_reached: int | None = None,
        elapsed_seconds: float | None = None,
        stage: str | None = None,
        backend: str | None = None,
        cypher_text: str | None = None,
        attempted_downgrade: bool = False,
    ) -> None:
        super().__init__(message)
        self.dimension = dimension
        self.limit = limit
        self.rows_produced = rows_produced
        self.depth_reached = depth_reached
        self.elapsed_seconds = elapsed_seconds
        self.stage = stage
        self.backend = backend
        self.cypher_text = cypher_text
        self.attempted_downgrade = attempted_downgrade

    def annotate(
        self, *, backend: str | None = None, cypher_text: str | None = None
    ) -> "QueryBudgetExceeded":
        """Fill in serving context in place (the service knows it; the
        fixpoint/engine layers that raise do not)."""
        if backend is not None and self.backend is None:
            self.backend = backend
        if cypher_text is not None and self.cypher_text is None:
            self.cypher_text = cypher_text
        return self

    def diagnostics(self) -> dict[str, object]:
        """The structured fields as a dict (CLI/metrics serialization)."""
        return {
            "dimension": self.dimension,
            "limit": self.limit,
            "rows_produced": self.rows_produced,
            "depth_reached": self.depth_reached,
            "elapsed_seconds": self.elapsed_seconds,
            "stage": self.stage,
            "backend": self.backend,
            "attempted_downgrade": self.attempted_downgrade,
        }


@dataclass(frozen=True)
class QueryBudget:
    """Per-query resource limits; ``None`` means unlimited in that dimension.

    ``max_rows``
        Cap on result/intermediate rows a single query may produce.
    ``max_depth``
        Cap on recursion depth (fixpoint rounds / traversal hops).
    ``timeout_seconds``
        Wall-clock limit for one query, spanning retries and downgrades.
    ``allow_downgrade``
        Whether the service may degrade a budget-pressured query before
        giving up.  Two distinct mechanisms gate on it: (1) a
        budget-tripped unrolled traversal is re-planned as a recursive
        CTE and retried once — result-preserving, only the plan shape
        changes; (2) when ``max_depth`` is set, open-bound traversals are
        planned depth-capped from the start, which *truncates* engine
        answers to paths of at most ``max_depth`` hops (the reference
        evaluator has no such cap and raises
        :class:`QueryBudgetExceeded` instead, so the two paths diverge on
        depth-limited queries).  Defaults to on.
    """

    max_rows: int | None = None
    max_depth: int | None = None
    timeout_seconds: float | None = None
    allow_downgrade: bool = True

    def __post_init__(self) -> None:
        if self.max_rows is not None and self.max_rows <= 0:
            raise ValueError("max_rows must be positive (or None for unlimited)")
        if self.max_depth is not None and self.max_depth <= 0:
            raise ValueError("max_depth must be positive (or None for unlimited)")
        if self.timeout_seconds is not None and self.timeout_seconds <= 0:
            raise ValueError(
                "timeout_seconds must be positive (or None for unlimited)"
            )

    @property
    def unlimited(self) -> bool:
        return (
            self.max_rows is None
            and self.max_depth is None
            and self.timeout_seconds is None
        )

    def start(self, clock=time.monotonic) -> "BudgetTracker":
        """Begin tracking one query's spend against this budget."""
        return BudgetTracker(self, clock=clock)


class BudgetTracker:
    """Running totals for one query's spend against a :class:`QueryBudget`.

    One tracker belongs to one query execution, but that execution may
    fan out: a partition-parallel scan
    (:mod:`repro.backends.executor`) charges every partition's rows
    against the *same* tracker from concurrent threads, so the counter
    updates are lock-protected.  The charge methods raise
    :class:`QueryBudgetExceeded` the moment a limit is crossed; callers
    pass ``stage`` so the error names the enforcing layer.
    """

    def __init__(self, budget: QueryBudget, clock=time.monotonic) -> None:
        self.budget = budget
        self._clock = clock
        self._lock = threading.Lock()
        self.started_at = clock()
        self.rows_produced = 0
        self.depth_reached = 0

    @property
    def elapsed_seconds(self) -> float:
        return self._clock() - self.started_at

    def remaining_seconds(self) -> float | None:
        """Seconds left on the wall clock, or ``None`` when untimed."""
        if self.budget.timeout_seconds is None:
            return None
        return self.budget.timeout_seconds - self.elapsed_seconds

    def deadline(self) -> float | None:
        """Absolute ``clock()`` value the query must finish by, or ``None``."""
        if self.budget.timeout_seconds is None:
            return None
        return self.started_at + self.budget.timeout_seconds

    def charge_rows(self, count: int, stage: str = "fixpoint") -> None:
        """Record *count* more rows produced; raise if over ``max_rows``."""
        with self._lock:
            self.rows_produced += count
            produced = self.rows_produced
        limit = self.budget.max_rows
        if limit is not None and produced > limit:
            raise self._exceeded(
                "rows",
                limit,
                f"query produced {produced} rows, over the "
                f"budget of {limit}",
                stage,
            )

    def charge_depth(self, depth: int, stage: str = "fixpoint") -> None:
        """Record recursion reaching *depth*; raise if over ``max_depth``."""
        with self._lock:
            self.depth_reached = max(self.depth_reached, depth)
            reached = self.depth_reached
        limit = self.budget.max_depth
        if limit is not None and reached > limit:
            raise self._exceeded(
                "depth",
                limit,
                f"recursion reached depth {self.depth_reached}, over the "
                f"budget of {limit}",
                stage,
            )

    def check_timeout(self, stage: str = "fixpoint") -> None:
        """Raise if the wall-clock limit has passed."""
        limit = self.budget.timeout_seconds
        if limit is not None and self.elapsed_seconds > limit:
            raise self._exceeded(
                "timeout",
                limit,
                f"query ran {self.elapsed_seconds:.3f}s, over the budget "
                f"of {limit:g}s",
                stage,
            )

    def timed_out(self) -> bool:
        remaining = self.remaining_seconds()
        return remaining is not None and remaining <= 0

    def reset_work(self) -> None:
        """Zero the row/depth counters for a fresh attempt (transparent
        retry on another member, or a plan downgrade).  The wall clock is
        deliberately *not* reset — the timeout spans all attempts."""
        with self._lock:
            self.rows_produced = 0
            self.depth_reached = 0

    def _exceeded(
        self, dimension: str, limit: float | int, message: str, stage: str
    ) -> QueryBudgetExceeded:
        return QueryBudgetExceeded(
            message,
            dimension=dimension,
            limit=limit,
            rows_produced=self.rows_produced,
            depth_reached=self.depth_reached,
            elapsed_seconds=self.elapsed_seconds,
            stage=stage,
        )


def as_tracker(
    budget: "QueryBudget | BudgetTracker | None",
) -> BudgetTracker | None:
    """Normalize a budget-or-tracker argument: callers may pass either a
    fresh :class:`QueryBudget` (a tracker is started for them) or an
    in-flight :class:`BudgetTracker` (shared spend across layers)."""
    if budget is None:
        return None
    if isinstance(budget, QueryBudget):
        return None if budget.unlimited else budget.start()
    return budget
