"""A metrics registry: counters, gauges, histograms, slow-query log.

The :class:`MetricsRegistry` is the single source of truth for the
serving stack's numeric telemetry.  The legacy surfaces —
:class:`~repro.backends.service.CacheInfo`, per-query
:class:`~repro.backends.service.QueryStat` percentiles, ``repro backends
--stats --json`` — remain as thin *views* over the registry's counters,
so existing consumers keep working while new ones scrape one place.

Design points (all stdlib):

* every metric supports labels (``counter.inc(backend="duckdb")``);
  a label-less series is just the empty label set;
* metrics are created idempotently through the registry
  (:meth:`MetricsRegistry.counter` returns the existing metric on a
  repeat call, and raises if the name is already taken by another type);
* :meth:`MetricsRegistry.snapshot` returns a JSON-able dict,
  :meth:`MetricsRegistry.to_prometheus` the text exposition format
  (``# HELP`` / ``# TYPE`` / sample lines, histogram ``_bucket`` series
  with cumulative counts and an ``+Inf`` bound) that a Prometheus server
  scrapes as-is;
* the :class:`SlowQueryLog` is a bounded ring buffer of the slowest
  recent executions — the first place to look when p95 jumps.

Thread-safety: one lock per metric family, taken for the few dict
operations an update needs; the registry lock only guards creation.
"""

from __future__ import annotations

import math
import threading
import time
from collections import deque
from dataclasses import dataclass, field

#: Default histogram bucket upper bounds, in seconds (latency-shaped).
DEFAULT_BUCKETS = (
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)

#: Bucket upper bounds for ratio-shaped observations (q-error of estimate
#: vs actual rows: ``max(a/e, e/a)``, so every sample is ≥ 1).  Powers of
#: two up to 1024× — anything past that is "the estimator was not even
#: wrong" and lands in +Inf.
RATIO_BUCKETS = (
    1.0,
    2.0,
    4.0,
    8.0,
    16.0,
    32.0,
    64.0,
    128.0,
    256.0,
    512.0,
    1024.0,
)

_LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, object]) -> _LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _render_labels(key: _LabelKey, extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = key + extra
    if not pairs:
        return ""
    inner = ",".join(f'{name}="{_escape(value)}"' for name, value in pairs)
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


class _Metric:
    """Shared naming/locking plumbing for all three metric kinds."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str = "") -> None:
        self.name = name
        self.help = help_text
        self._lock = threading.Lock()

    def _key(self, labels: dict[str, object]) -> _LabelKey:
        return _label_key(labels)


class Counter(_Metric):
    """A monotonically increasing count (per label set)."""

    kind = "counter"

    def __init__(self, name: str, help_text: str = "") -> None:
        super().__init__(name, help_text)
        self._values: dict[_LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease ({amount})")
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: object) -> float:
        with self._lock:
            return self._values.get(self._key(labels), 0.0)

    def total(self) -> float:
        """Sum across every label set (convenience for views)."""
        with self._lock:
            return sum(self._values.values())

    def series(self) -> list[tuple[_LabelKey, float]]:
        with self._lock:
            return sorted(self._values.items())


class Gauge(_Metric):
    """A value that goes up and down (pool size, in-use connections)."""

    kind = "gauge"

    def __init__(self, name: str, help_text: str = "") -> None:
        super().__init__(name, help_text)
        self._values: dict[_LabelKey, float] = {}

    def set(self, value: float, **labels: object) -> None:
        with self._lock:
            self._values[self._key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: object) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: object) -> float:
        with self._lock:
            return self._values.get(self._key(labels), 0.0)

    def series(self) -> list[tuple[_LabelKey, float]]:
        with self._lock:
            return sorted(self._values.items())


class Histogram(_Metric):
    """Cumulative-bucket latency histogram (Prometheus semantics)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str = "",
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help_text)
        self.buckets = tuple(sorted(buckets))
        # per label set: ([count per finite bucket], count, sum)
        self._series: dict[_LabelKey, tuple[list[int], int, float]] = {}

    def observe(self, value: float, **labels: object) -> None:
        key = self._key(labels)
        with self._lock:
            counts, count, total = self._series.get(
                key, ([0] * len(self.buckets), 0, 0.0)
            )
            for index, bound in enumerate(self.buckets):
                if value <= bound:
                    counts[index] += 1
                    break
            self._series[key] = (counts, count + 1, total + value)

    def count(self, **labels: object) -> int:
        with self._lock:
            entry = self._series.get(self._key(labels))
            return entry[1] if entry else 0

    def sum(self, **labels: object) -> float:
        with self._lock:
            entry = self._series.get(self._key(labels))
            return entry[2] if entry else 0.0

    def series(self) -> list[tuple[_LabelKey, tuple[list[int], int, float]]]:
        with self._lock:
            return sorted(
                (key, (list(counts), count, total))
                for key, (counts, count, total) in self._series.items()
            )


@dataclass(frozen=True)
class SlowQuery:
    """One slow-query log entry."""

    cypher_text: str
    backend: str
    seconds: float
    recorded_at: float
    attributes: dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "cypher": self.cypher_text,
            "backend": self.backend,
            "ms": round(self.seconds * 1000.0, 3),
            "recorded_at": self.recorded_at,
            "attributes": dict(self.attributes),
        }


class SlowQueryLog:
    """Bounded ring buffer of executions slower than *threshold_seconds*."""

    def __init__(self, capacity: int = 64, threshold_seconds: float = 0.25) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.threshold_seconds = threshold_seconds
        self._lock = threading.Lock()
        self._entries: deque[SlowQuery] = deque(maxlen=capacity)

    def record(
        self, cypher_text: str, backend: str, seconds: float, **attributes: object
    ) -> bool:
        """Log the execution if it breached the threshold; ``True`` if kept."""
        if seconds < self.threshold_seconds:
            return False
        entry = SlowQuery(cypher_text, backend, seconds, time.time(), dict(attributes))
        with self._lock:
            self._entries.append(entry)
        return True

    def entries(self) -> tuple[SlowQuery, ...]:
        """Retained entries, oldest first."""
        with self._lock:
            return tuple(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()


class MetricsRegistry:
    """Creates and holds metrics; snapshots them as JSON or Prometheus text."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, _Metric] = {}

    # -- creation (idempotent) ----------------------------------------------

    def counter(self, name: str, help_text: str = "") -> Counter:
        return self._get_or_create(Counter, name, help_text)

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help_text)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> Histogram:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, Histogram):
                    raise ValueError(
                        f"metric {name!r} already registered as {existing.kind}"
                    )
                return existing
            metric = Histogram(name, help_text, buckets)
            self._metrics[name] = metric
            return metric

    def _get_or_create(self, cls, name: str, help_text: str):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as {existing.kind}"
                    )
                return existing
            metric = cls(name, help_text)
            self._metrics[name] = metric
            return metric

    def get(self, name: str) -> _Metric | None:
        with self._lock:
            return self._metrics.get(name)

    def metrics(self) -> tuple[_Metric, ...]:
        with self._lock:
            return tuple(self._metrics[name] for name in sorted(self._metrics))

    # -- export -------------------------------------------------------------

    def snapshot(self) -> dict:
        """A JSON-able snapshot of every metric's current series."""
        document: dict[str, dict] = {}
        for metric in self.metrics():
            if isinstance(metric, Histogram):
                series = [
                    {
                        "labels": dict(key),
                        "count": count,
                        "sum": round(total, 9),
                        "buckets": {
                            _format_value(bound): bucket_count
                            for bound, bucket_count in zip(metric.buckets, counts)
                        },
                    }
                    for key, (counts, count, total) in metric.series()
                ]
            else:
                series = [
                    {"labels": dict(key), "value": value}
                    for key, value in metric.series()
                ]
            document[metric.name] = {
                "type": metric.kind,
                "help": metric.help,
                "series": series,
            }
        return document

    def to_prometheus(self) -> str:
        """The Prometheus text exposition format (version 0.0.4)."""
        lines: list[str] = []
        for metric in self.metrics():
            if metric.help:
                lines.append(f"# HELP {metric.name} {_escape(metric.help)}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            if isinstance(metric, Histogram):
                for key, (counts, count, total) in metric.series():
                    cumulative = 0
                    for bound, bucket_count in zip(metric.buckets, counts):
                        cumulative += bucket_count
                        label_text = _render_labels(
                            key, (("le", _format_value(bound)),)
                        )
                        lines.append(
                            f"{metric.name}_bucket{label_text} {cumulative}"
                        )
                    label_text = _render_labels(key, (("le", "+Inf"),))
                    lines.append(f"{metric.name}_bucket{label_text} {count}")
                    lines.append(
                        f"{metric.name}_sum{_render_labels(key)} "
                        f"{_format_value(total)}"
                    )
                    lines.append(f"{metric.name}_count{_render_labels(key)} {count}")
            else:
                for key, value in metric.series():
                    lines.append(
                        f"{metric.name}{_render_labels(key)} {_format_value(value)}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")
