"""Hierarchical query-lifecycle tracing (stdlib only).

A :class:`Tracer` produces :class:`Span` trees: every service entry point
opens a root span (``query``, ``query.batch``), and the stages underneath
— transpilation, cache lookups, pool checkouts, engine execution — open
children.  Completed root spans are retained in a bounded ring buffer
(:meth:`Tracer.traces`), so a long-lived tracer never grows without bound.

Parenting works two ways, and both are concurrency-correct:

* **implicitly** through a :class:`~contextvars.ContextVar`: entering a
  span makes it the *current* span for the calling thread (or asyncio
  task — tasks copy their creation context, so sibling tasks can never
  see each other's spans), and nested spans attach to it;
* **explicitly** via ``tracer.span(name, parent=span)``: fan-out code
  (``run_many`` worker threads, ``asyncio.gather`` branches) passes the
  batch span across the thread/task boundary, so each branch's spans
  parent under the batch root without interleaving into one another.

The cost discipline: instrumented code always calls ``tracer.span(...)``,
but the default tracer is :data:`NOOP_TRACER`, whose ``span`` returns one
shared, attribute-dropping context manager — no allocation, no clock
reads, no lock.  The throughput benchmark's traced-vs-untraced lane keeps
this honest (see ``BENCH_throughput.json`` → ``tracing_overhead``).
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from contextvars import ContextVar
from typing import Iterator

#: The active span of the calling thread/task (implicit parenting).
_CURRENT: ContextVar["Span | None"] = ContextVar("repro_current_span", default=None)

_SPAN_IDS = itertools.count(1)

#: Sentinel distinguishing "no parent passed" from "parent=None" (forced root).
_UNSET = object()


def current_span() -> "Span | None":
    """The span the calling thread/task is currently inside (or ``None``)."""
    return _CURRENT.get()


class Span:
    """One timed stage of a query's life, with attributes and children.

    Spans are created through :meth:`Tracer.span`; they record wall-clock
    bounds from :func:`time.perf_counter`, a free-form attribute dict, and
    the child spans opened while they were current.  Appending children is
    thread-safe under the GIL (``list.append``), which is all the fan-out
    paths need: each worker appends *its own* subtree to the shared parent.
    """

    __slots__ = (
        "name",
        "span_id",
        "parent_id",
        "attributes",
        "children",
        "start",
        "end",
    )

    def __init__(
        self,
        name: str,
        parent_id: int | None = None,
        attributes: dict[str, object] | None = None,
    ) -> None:
        self.name = name
        self.span_id = next(_SPAN_IDS)
        self.parent_id = parent_id
        self.attributes: dict[str, object] = dict(attributes) if attributes else {}
        self.children: list[Span] = []
        # perf_counter only: one clock read per span on the hot path (the
        # slow-query log carries wall-clock timestamps where logs need them).
        self.start = time.perf_counter()
        self.end: float | None = None

    # -- recording ----------------------------------------------------------

    def set(self, key: str, value: object) -> None:
        """Attach (or overwrite) one attribute."""
        self.attributes[key] = value

    def event(self, name: str, **attributes: object) -> None:
        """Record a point-in-time child span (zero duration)."""
        child = Span(name, parent_id=self.span_id, attributes=attributes)
        child.end = child.start
        self.children.append(child)

    # -- introspection ------------------------------------------------------

    @property
    def duration_seconds(self) -> float:
        end = self.end if self.end is not None else time.perf_counter()
        return max(end - self.start, 0.0)

    @property
    def duration_ms(self) -> float:
        return self.duration_seconds * 1000.0

    def find(self, name: str) -> "Span | None":
        """First descendant (depth-first, this span included) named *name*."""
        if self.name == name:
            return self
        for child in self.children:
            found = child.find(name)
            if found is not None:
                return found
        return None

    def find_all(self, name: str) -> list["Span"]:
        """Every descendant (this span included) named *name*, depth-first."""
        return [span for span in self.walk() if span.name == name]

    def walk(self) -> Iterator["Span"]:
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, {self.duration_ms:.2f} ms, {self.attributes!r})"

    # -- serialization ------------------------------------------------------

    def to_dict(self, _root_start: float | None = None) -> dict:
        """A JSON-able dict; :func:`span_from_dict` round-trips it."""
        root_start = self.start if _root_start is None else _root_start
        return {
            "name": self.name,
            "offset_ms": round((self.start - root_start) * 1000.0, 3),
            "duration_ms": round(self.duration_ms, 3),
            "attributes": dict(self.attributes),
            "children": [child.to_dict(root_start) for child in self.children],
        }


def span_from_dict(document: dict, _base: float = 0.0) -> Span:
    """Rebuild a :class:`Span` tree from :meth:`Span.to_dict` output.

    The rebuilt spans carry synthetic perf-counter bounds that reproduce
    the serialized offsets/durations, so tree shape, names, attributes,
    and timings all survive a JSON round trip.
    """
    span = Span(str(document["name"]), attributes=dict(document.get("attributes", {})))
    span.start = _base + float(document.get("offset_ms", 0.0)) / 1000.0
    span.end = span.start + float(document.get("duration_ms", 0.0)) / 1000.0
    # Offsets are relative to the *root* start, so the base passes through.
    span.children = [
        span_from_dict(child, _base) for child in document.get("children", [])
    ]
    for child in span.children:
        child.parent_id = span.span_id
    return span


class _SpanContext:
    """Context manager entering/exiting one real span."""

    __slots__ = ("_tracer", "_name", "_parent", "_attributes", "_span", "_token")

    def __init__(self, tracer: "Tracer", name: str, parent, attributes) -> None:
        self._tracer = tracer
        self._name = name
        self._parent = parent
        self._attributes = attributes
        self._span: Span | None = None
        self._token = None

    def __enter__(self) -> Span:
        parent = self._parent
        if parent is _UNSET:
            parent = _CURRENT.get()
        if parent is NOOP_SPAN:
            parent = None
        span = Span(
            self._name,
            parent_id=parent.span_id if isinstance(parent, Span) else None,
            attributes=self._attributes,
        )
        if isinstance(parent, Span):
            parent.children.append(span)
        self._span = span
        self._token = _CURRENT.set(span)
        return span

    def __exit__(self, exc_type, exc, traceback) -> bool:
        span = self._span
        assert span is not None
        span.end = time.perf_counter()
        if exc is not None:
            span.set("error", f"{type(exc).__name__}: {exc}")
        if self._token is not None:
            _CURRENT.reset(self._token)
        if span.parent_id is None:
            self._tracer._record_root(span)
        return False


class Tracer:
    """Collects span trees; completed roots land in a bounded ring buffer.

    ``max_traces`` bounds retention: an always-attached tracer under
    production traffic keeps only the most recent roots.  A tracer is
    cheap to create — ``repro explain`` makes a fresh one per query.
    """

    enabled = True

    def __init__(self, max_traces: int = 256) -> None:
        self._lock = threading.Lock()
        self._roots: deque[Span] = deque(maxlen=max_traces)

    def span(self, name: str, parent=_UNSET, **attributes: object) -> _SpanContext:
        """Open a span: ``with tracer.span("execute", backend=b) as span:``.

        Without *parent* the span attaches to the calling thread/task's
        current span (or becomes a root).  Passing ``parent=`` explicitly
        re-parents across a thread or task boundary; ``parent=None``
        forces a new root.
        """
        return _SpanContext(self, name, parent, attributes)

    def _record_root(self, span: Span) -> None:
        with self._lock:
            self._roots.append(span)

    def traces(self) -> tuple[Span, ...]:
        """Completed root spans, oldest first."""
        with self._lock:
            return tuple(self._roots)

    def last_trace(self) -> Span | None:
        with self._lock:
            return self._roots[-1] if self._roots else None

    def reset(self) -> None:
        with self._lock:
            self._roots.clear()


class _NoopSpan:
    """The shared do-nothing span: absorbs every recording call."""

    __slots__ = ()

    def set(self, key: str, value: object) -> None:
        pass

    def event(self, name: str, **attributes: object) -> None:
        pass

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False


NOOP_SPAN = _NoopSpan()


class NoopTracer:
    """The always-off tracer: ``span()`` returns the one shared no-op span.

    This is the default everywhere, which is what makes instrumentation
    safe to leave always-on: the hot path pays one attribute lookup and
    one call returning a singleton — no clock, no allocation, no lock.
    """

    enabled = False

    def span(self, name: str, parent=_UNSET, **attributes: object) -> _NoopSpan:
        return NOOP_SPAN

    def traces(self) -> tuple[Span, ...]:
        return ()

    def last_trace(self) -> None:
        return None

    def reset(self) -> None:
        pass


NOOP_TRACER = NoopTracer()
