"""``repro explain``: one traced execution, rendered for humans and machines.

:func:`explain_query` attaches a fresh :class:`~repro.observability.tracing.Tracer`
to a :class:`~repro.backends.service.GraphitiService`, runs the query once,
and packages what the trace shows: the hierarchical span tree with
per-stage timings, the cache and pool events along the way, and the
planner's decisions (recursive CTE vs unrolled join chains, join order,
pushed predicates) from the prepared query's
:class:`~repro.sql.planner.PlanReport`.

:func:`render_span_tree` is the text renderer (box-drawing tree, stage
durations, inline attributes); :meth:`ExplainReport.to_dict` is the
``--json`` payload, whose ``trace`` member round-trips through
:func:`~repro.observability.tracing.span_from_dict`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.observability.tracing import Span, Tracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.backends.service import GraphitiService, PreparedQuery

#: Attributes hidden from the inline tree rendering (too long to inline).
_VERBOSE_ATTRIBUTES = {"cypher", "sql"}


def _format_attribute(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}".rstrip("0").rstrip(".") or "0"
    if isinstance(value, bool):
        return "true" if value else "false"
    return str(value)


def render_span_tree(span: Span, indent: str = "") -> list[str]:
    """Render *span* and its descendants as an indented tree of lines."""
    attributes = " ".join(
        f"{key}={_format_attribute(value)}"
        for key, value in sorted(span.attributes.items())
        if key not in _VERBOSE_ATTRIBUTES
    )
    suffix = f"  {attributes}" if attributes else ""
    lines = [f"{indent}{span.name} ({span.duration_ms:.2f} ms){suffix}"]
    child_indent = indent.replace("├─ ", "│  ").replace("└─ ", "   ")
    for index, child in enumerate(span.children):
        last = index == len(span.children) - 1
        branch = "└─ " if last else "├─ "
        lines.extend(render_span_tree(child, child_indent + branch))
    return lines


@dataclass
class ExplainReport:
    """Everything ``repro explain`` shows about one traced execution."""

    cypher_text: str
    backend: str
    opt_level: int
    trace: Span
    sql_text: str
    plan: object | None  # PlanReport (kept loose: lazily imported layer)
    rows: int
    metrics: dict
    #: Observed actual-row history from the cache entry's
    #: :class:`~repro.backends.service.ExecutionFeedback` — the truthful
    #: counterpart to the plan's estimate, even on a pure cache hit.
    observed: dict | None = None

    def render(self, show_sql: bool = True) -> list[str]:
        lines = [f"== trace ({self.backend}, opt level {self.opt_level}) =="]
        lines.extend(render_span_tree(self.trace))
        plan_lines = _render_plan(self.plan, self.observed)
        if plan_lines:
            lines.append("")
            lines.append("== plan ==")
            lines.extend(plan_lines)
        if show_sql:
            lines.append("")
            lines.append("== sql ==")
            lines.extend(self.sql_text.splitlines())
        lines.append("")
        lines.append(f"== result: {self.rows} row(s) ==")
        return lines

    def to_dict(self) -> dict:
        plan = getattr(self.plan, "to_dict", lambda: None)()
        return {
            "cypher": self.cypher_text,
            "backend": self.backend,
            "opt_level": self.opt_level,
            "rows": self.rows,
            "trace": self.trace.to_dict(),
            "plan": plan,
            "observed": self.observed,
            "sql": self.sql_text,
            "metrics": self.metrics,
        }


def _render_plan(
    plan: object | None, observed: dict | None = None
) -> list[str]:
    if plan is None:
        return []
    lines: list[str] = []
    for traversal in getattr(plan, "traversals", ()):
        estimate = (
            f", est. chain rows {traversal.estimated_rows:.0f}"
            if traversal.estimated_rows is not None
            and "chain rows" not in traversal.reason
            else ""
        )
        hops = (
            f"*{traversal.min_hops}..{traversal.max_hops}"
            if traversal.max_hops is not None
            else f"*{traversal.min_hops}.."
        )
        lines.append(
            f"traversal {traversal.name} ({hops}): {traversal.choice} "
            f"— {traversal.reason}{estimate}"
        )
    for join in getattr(plan, "joins", ()):
        order = " ⋈ ".join(join.order)
        lines.append(
            f"join order: {order} "
            f"(pushed {join.pushed_predicates} predicate(s), "
            f"{join.join_edges} equi-join edge(s))"
        )
    ctes = getattr(plan, "cte_names", ())
    if ctes:
        lines.append(f"shared subplans: {', '.join(ctes)}")
    estimated = getattr(plan, "estimated_rows", None)
    if estimated is not None:
        lines.append(f"estimated result rows: {estimated:.0f}")
    if observed and observed.get("executions"):
        lines.append(
            f"observed actual rows: last {observed['last_rows']}, "
            f"mean {observed['mean_rows']} over "
            f"{observed['executions']} execution(s)"
        )
    feedback = getattr(plan, "feedback", None)
    if feedback:
        corrections = []
        if feedback.get("stats_refreshed"):
            corrections.append("statistics refreshed")
        if feedback.get("force_recursive"):
            corrections.append("traversal forced recursive")
        scale = feedback.get("row_scale")
        if scale is not None and scale != 1.0:
            corrections.append(f"row estimates scaled ×{scale:g}")
        applied = f" — {', '.join(corrections)}" if corrections else ""
        lines.append(
            f"re-planned (epoch {feedback.get('epoch')}): "
            f"{feedback.get('reason')} ×{feedback.get('divergence')} "
            f"(observed {feedback.get('observed_rows')} vs estimated "
            f"{feedback.get('previous_estimate')}){applied}"
        )
    parallelism = getattr(plan, "parallelism", None)
    if parallelism:
        if parallelism.get("parallel"):
            lines.append(
                f"parallelism: {parallelism.get('degree')}-way partition "
                f"scan of {parallelism.get('relation')} "
                f"({parallelism.get('kind')}) — {parallelism.get('reason')}"
            )
        else:
            lines.append(
                f"parallelism: serial (requested "
                f"{parallelism.get('requested')}) — "
                f"{parallelism.get('reason')}"
            )
    sharding = getattr(plan, "sharding", None)
    if sharding:
        kind = sharding.get("kind")
        shards = sharding.get("shards")
        fan_out = f" across {shards} shard(s)" if shards else ""
        if kind == "non_fragmentable":
            lines.append(
                f"sharding: fallback to unsharded backend — "
                f"{sharding.get('reason')}"
            )
        else:
            lines.append(f"sharding: {kind}{fan_out} — {sharding.get('reason')}")
            merged = sharding.get("merged_aggregates")
            if merged:
                rules = ", ".join(
                    f"{column['alias']}←{column['merge']}" for column in merged
                )
                lines.append(f"  merge rules: {rules}")
            if sharding.get("distinct"):
                lines.append("  coordinator re-applies DISTINCT after union")
            order = sharding.get("order")
            if order:
                limit = order.get("limit")
                suffix = f", limit {limit}" if limit is not None else ""
                lines.append(
                    f"  coordinator re-sorts on output column(s) "
                    f"{order.get('indexes')}{suffix}"
                )
    return lines


def explain_query(
    service: "GraphitiService",
    cypher_text: str,
    backend: str | None = None,
    opt_level: int | None = None,
) -> ExplainReport:
    """Run *cypher_text* once under a fresh tracer and report the trace.

    The service's tracer is swapped in for the duration of the run and
    restored afterwards, so an always-attached production tracer (or the
    default no-op) is undisturbed.  Note that a previously prepared query
    legitimately shows a ``cache.lookup`` hit and no parse/transpile
    spans — the trace reports what actually happened; the plan section
    still shows the planner's decisions, which travel with the cached
    :class:`~repro.backends.service.PreparedQuery`.
    """
    name = backend or service.default_backend
    tracer = Tracer()
    previous = service.tracer
    service.set_tracer(tracer)
    try:
        # serve() hands back the exact cache entry that executed, so the
        # plan and observed history below describe *this* run — even when
        # the adaptive layer re-planned the query right afterwards.
        result, prepared = service.serve(
            cypher_text, backend=name, opt_level=opt_level
        )
    finally:
        service.set_tracer(previous)
    trace = tracer.last_trace()
    assert trace is not None, "traced run produced no root span"
    feedback = getattr(prepared, "feedback", None)
    return ExplainReport(
        cypher_text=cypher_text,
        backend=name,
        opt_level=prepared.opt_level,
        trace=trace,
        sql_text=prepared.sql_text,
        plan=prepared.plan,
        rows=len(result.rows),
        metrics=service.metrics.snapshot(),
        observed=feedback.to_dict() if feedback is not None else None,
    )
