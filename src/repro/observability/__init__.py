"""Observability: query-lifecycle tracing, metrics, and explain rendering.

The serving stack (``GraphitiService`` → optimizer → caches → pool →
engine) emits structured telemetry through this package:

* :mod:`repro.observability.tracing` — hierarchical spans
  (``query.parse``, ``query.transpile``, ``optimize.planner``,
  ``cache.lookup``, ``pool.checkout``, ``execute``) collected by a
  :class:`Tracer`.  The default :data:`NOOP_TRACER` makes every span a
  shared no-op object, so instrumentation stays always-on with
  effectively zero cost until a caller attaches a real tracer.
* :mod:`repro.observability.metrics` — a :class:`MetricsRegistry` of
  counters, gauges, and histograms with JSON snapshots and Prometheus
  text exposition, plus the :class:`SlowQueryLog` ring buffer.
* :mod:`repro.observability.explain` — turns one traced execution into
  the ``repro explain`` report: the span tree with per-stage timings,
  the planner's recursive-vs-unrolled decision, and cache/pool events.

The spans carry the estimated-vs-actual cardinality attributes the
adaptive-execution roadmap item (re-planning on estimate divergence)
will consume; nothing here imports beyond the stdlib.
"""

from repro.observability.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    SlowQuery,
    SlowQueryLog,
)
from repro.observability.tracing import (
    NOOP_SPAN,
    NOOP_TRACER,
    NoopTracer,
    Span,
    Tracer,
    current_span,
    span_from_dict,
)
from repro.observability.explain import (
    ExplainReport,
    explain_query,
    render_span_tree,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SlowQuery",
    "SlowQueryLog",
    "NOOP_SPAN",
    "NOOP_TRACER",
    "NoopTracer",
    "Span",
    "Tracer",
    "current_span",
    "span_from_dict",
    "ExplainReport",
    "explain_query",
    "render_span_tree",
]
