"""Command-line interface: ``python -m repro <subcommand>``.

Subcommands
-----------

``transpile``
    Translate a Cypher query into SQL over the induced relational schema::

        python -m repro transpile --graph-schema schema.txt \\
            --cypher "MATCH (n:EMP)-[e:WORK_AT]->(m:DEPT) RETURN n.name"

    ``--example emp-dept`` substitutes the built-in Figure-14 schema.

``check``
    Run the full Algorithm-1 pipeline on a pair of queries (or a named
    benchmark from the suite)::

        python -m repro check --benchmark academic/motivating --backend bounded
        python -m repro check --graph-schema g.txt --relational-schema r.txt \\
            --transformer t.txt --cypher "..." --sql "..." --backend deductive

``run``
    Execute Cypher queries end-to-end on a registered execution backend
    (schema → SDT → cached transpile → bulk-load → execute).  ``--cypher``
    repeats; ``--workers N`` fans the batch across N pooled connections
    on worker threads, ``--async-workers N`` drives it through the
    asyncio service (:class:`~repro.backends.async_service.AsyncGraphitiService`)
    at concurrency N instead::

        python -m repro run --example emp-dept --rows 1000 \\
            --backend sqlite-memory \\
            --cypher "MATCH (n:EMP)-[e:WORK_AT]->(m:DEPT) RETURN n.name"
        python -m repro run --example emp-dept --async-workers 4 \\
            --cypher "MATCH (n:EMP) RETURN n.name" \\
            --cypher "MATCH (m:DEPT) RETURN m.dname"

``bench-backends``
    Compare execution time of a standard workload across every available
    backend (results cross-checked against the reference evaluator)::

        python -m repro bench-backends --rows 5000 --repeats 5

``bench-throughput``
    Measure concurrent-serving QPS (serial vs pooled worker threads vs the
    asyncio lane; ``--mode`` picks lanes) and write the tracked baseline
    ``BENCH_throughput.json``::

        python -m repro bench-throughput --rows 2000 --batch 40
        python -m repro bench-throughput --mode async

``explain``
    Trace one query through the serving stack — parse, transpile, planner,
    cache lookups, pool checkout, engine execution — and render the span
    tree with per-stage timings plus the planner's decisions (recursive
    CTE vs unrolled join chains, join order, pushed predicates)::

        python -m repro explain --example social \\
            --cypher "MATCH (a:USER)-[:FOLLOWS*1..3]->(b:USER) RETURN b.uname"
        python -m repro explain --example emp-dept --json \\
            --cypher "MATCH (n:EMP) RETURN n.name"

``backends``
    List registered execution backends and their availability.

``tables``
    Regenerate one of the paper's evaluation tables::

        python -m repro tables --table 3

``suite``
    List the 410 benchmarks (ids, categories, ground truth).
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from pathlib import Path

from repro.checkers.base import Verdict
from repro.checkers.bounded import BoundedChecker
from repro.checkers.deductive import DeductiveChecker
from repro.core.equivalence import check_equivalence
from repro.core.sdt import infer_sdt
from repro.core.transpile import transpile
from repro.cypher.parser import parse_cypher
from repro.graph.parser import parse_graph_schema
from repro.graph.schema import GraphSchema
from repro.relational.parser import parse_relational_schema
from repro.sql.parser import parse_sql
from repro.sql.pretty import to_sql_text
from repro.transformer.parser import parse_transformer

_EXAMPLE_SCHEMAS = {
    "emp-dept": """
        node EMP(id, name)
        node DEPT(dnum, dname)
        edge WORK_AT(wid): EMP -> DEPT
    """,
    # Self-referential FOLLOWS edge: the smallest schema on which
    # variable-length path queries (``-[:FOLLOWS*1..3]->``) typecheck.
    "social": """
        node USER(uid, uname)
        edge FOLLOWS(fid): USER -> USER
    """,
}


def main(argv: list[str] | None = None) -> int:
    parser = _build_parser()
    arguments = parser.parse_args(argv)
    if arguments.command is None:
        parser.print_help()
        return 2
    handler = {
        "transpile": _command_transpile,
        "check": _command_check,
        "run": _command_run,
        "explain": _command_explain,
        "bench-backends": _command_bench_backends,
        "bench-throughput": _command_bench_throughput,
        "backends": _command_backends,
        "tables": _command_tables,
        "suite": _command_suite,
    }[arguments.command]
    try:
        return handler(arguments)
    except BrokenPipeError:
        # Downstream pipe reader (head, grep -q) closed early: not an error.
        # Detach stdout so interpreter shutdown doesn't retry the flush.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Graphiti reproduction: Cypher/SQL equivalence checking",
    )
    subparsers = parser.add_subparsers(dest="command")

    transpile_parser = subparsers.add_parser(
        "transpile", help="translate Cypher to SQL over the induced schema"
    )
    transpile_parser.add_argument("--cypher", required=True, help="Cypher query text")
    transpile_parser.add_argument(
        "--graph-schema", type=Path, help="graph schema declaration file"
    )
    transpile_parser.add_argument(
        "--example", choices=sorted(_EXAMPLE_SCHEMAS), help="built-in schema"
    )
    transpile_parser.add_argument(
        "--dialect", default="sqlite", help="SQL dialect to render (default sqlite)"
    )
    transpile_parser.add_argument(
        "--opt",
        type=int,
        choices=(0, 1, 2),
        default=2,
        help="optimization level: 0 raw, 1 rule rewrites, 2 cost-based (default 2)",
    )

    check_parser = subparsers.add_parser(
        "check", help="run the full equivalence-checking pipeline"
    )
    check_parser.add_argument("--benchmark", help="benchmark id from the suite")
    check_parser.add_argument("--graph-schema", type=Path)
    check_parser.add_argument("--relational-schema", type=Path)
    check_parser.add_argument("--transformer", type=Path)
    check_parser.add_argument("--cypher")
    check_parser.add_argument("--sql")
    check_parser.add_argument(
        "--backend", choices=("bounded", "deductive"), default="bounded"
    )
    check_parser.add_argument("--max-bound", type=int, default=4)
    check_parser.add_argument("--samples", type=int, default=250)
    check_parser.add_argument("--budget", type=float, default=10.0)

    run_parser = subparsers.add_parser(
        "run", help="execute Cypher queries on an execution backend"
    )
    run_parser.add_argument(
        "--cypher",
        required=True,
        action="append",
        dest="cyphers",
        help="Cypher query text (repeatable; a batch runs via the pool)",
    )
    run_parser.add_argument(
        "--graph-schema", type=Path, help="graph schema declaration file"
    )
    run_parser.add_argument(
        "--example", choices=sorted(_EXAMPLE_SCHEMAS), help="built-in schema"
    )
    run_parser.add_argument(
        "--backend", default="sqlite-memory", help="registered backend name"
    )
    run_parser.add_argument(
        "--rows", type=int, default=100, help="mock rows per table (default 100)"
    )
    run_parser.add_argument("--seed", type=int, default=42, help="mock-data seed")
    run_parser.add_argument(
        "--show-sql", action="store_true", help="print the rendered SQL first"
    )
    run_parser.add_argument(
        "--explain", action="store_true", help="print the engine's query plan"
    )
    run_parser.add_argument(
        "--limit", type=int, default=20, help="result rows to display (default 20)"
    )
    run_parser.add_argument(
        "--opt",
        type=int,
        choices=(0, 1, 2),
        default=2,
        help="optimization level: 0 raw, 1 rule rewrites, 2 cost-based (default 2)",
    )
    run_parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker threads executing the batch over pooled connections "
        "(default 1: serial)",
    )
    run_parser.add_argument(
        "--async-workers",
        type=int,
        default=0,
        dest="async_workers",
        metavar="N",
        help="drive the batch through the asyncio service at concurrency N "
        "instead of worker threads (0, the default, stays sync)",
    )
    run_parser.add_argument(
        "--shards",
        type=int,
        default=0,
        metavar="N",
        help="hash-partition the data across N shards and serve by "
        "scatter-gather (0, the default, stays unsharded; non-fragmentable "
        "queries fall back to one backend transparently)",
    )
    run_parser.add_argument(
        "--parallel",
        type=int,
        default=1,
        metavar="N",
        help="partition-parallel scan degree: split single-relation scans "
        "into N rowid ranges and run them concurrently (1, the default, "
        "stays serial; small or non-fragmentable plans stay serial "
        "regardless — see 'repro explain')",
    )
    run_parser.add_argument(
        "--persistent-cache",
        action="store_true",
        help="use the on-disk transpilation cache (cross-process reuse)",
    )
    run_parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-query wall-clock budget; overruns abort the statement "
        "in-engine and fail with structured diagnostics",
    )
    run_parser.add_argument(
        "--max-rows",
        type=int,
        default=None,
        dest="max_rows",
        metavar="N",
        help="per-query produced-row budget",
    )
    run_parser.add_argument(
        "--max-depth",
        type=int,
        default=None,
        dest="max_depth",
        metavar="N",
        help="per-query traversal depth budget (variable-length paths are "
        "re-planned with the cap before execution)",
    )
    run_parser.add_argument(
        "--feedback-ratio",
        type=float,
        default=None,
        dest="feedback_ratio",
        metavar="R",
        help="estimate-vs-actual divergence (q-error) that triggers an "
        "adaptive re-plan (default 8; 0 disables adaptive execution)",
    )

    explain_parser = subparsers.add_parser(
        "explain",
        help="trace one query through the serving stack and render the span "
        "tree, per-stage timings, and planner decisions",
    )
    explain_parser.add_argument("--cypher", required=True, help="Cypher query text")
    explain_parser.add_argument(
        "--graph-schema", type=Path, help="graph schema declaration file"
    )
    explain_parser.add_argument(
        "--example", choices=sorted(_EXAMPLE_SCHEMAS), help="built-in schema"
    )
    explain_parser.add_argument(
        "--backend", default="sqlite-memory", help="registered backend name"
    )
    explain_parser.add_argument(
        "--rows", type=int, default=100, help="mock rows per table (default 100)"
    )
    explain_parser.add_argument("--seed", type=int, default=42, help="mock-data seed")
    explain_parser.add_argument(
        "--opt",
        type=int,
        choices=(0, 1, 2),
        default=2,
        help="optimization level: 0 raw, 1 rule rewrites, 2 cost-based (default 2)",
    )
    explain_parser.add_argument(
        "--shards",
        type=int,
        default=0,
        metavar="N",
        help="trace through an N-shard scatter-gather coordinator (the plan "
        "section then shows the fragment classification and merge rules)",
    )
    explain_parser.add_argument(
        "--parallel",
        type=int,
        default=1,
        metavar="N",
        help="request partition-parallel scans at degree N (the plan "
        "section then shows the chosen degree, or why the query stayed "
        "serial)",
    )
    explain_parser.add_argument(
        "--json",
        action="store_true",
        help="emit the machine-readable report (the trace member round-trips "
        "through span_from_dict)",
    )
    explain_parser.add_argument(
        "--no-sql", action="store_true", help="omit the rendered SQL section"
    )

    bench_parser = subparsers.add_parser(
        "bench-backends", help="compare the standard workload across backends"
    )
    bench_parser.add_argument(
        "--rows", type=int, default=2000, help="mock rows per table (default 2000)"
    )
    bench_parser.add_argument(
        "--repeats", type=int, default=3, help="timing repeats (median reported)"
    )
    bench_parser.add_argument(
        "--backend",
        action="append",
        dest="backends",
        help="backend to include (repeatable; default: every available one)",
    )

    throughput_parser = subparsers.add_parser(
        "bench-throughput",
        help="measure concurrent-serving QPS and write BENCH_throughput.json",
    )
    throughput_parser.add_argument(
        "--rows", type=int, default=2000, help="mock rows per table (default 2000)"
    )
    throughput_parser.add_argument(
        "--batch", type=int, default=40, help="queries per batch (default 40)"
    )
    throughput_parser.add_argument(
        "--repeats", type=int, default=3, help="timing repeats (best reported)"
    )
    throughput_parser.add_argument(
        "--backend",
        action="append",
        dest="backends",
        help="backend to include (repeatable; default: every available one)",
    )
    throughput_parser.add_argument(
        "--mode",
        choices=("threads", "async", "both"),
        default="both",
        help="measurement lanes: worker threads, the asyncio service, or "
        "both (default both)",
    )
    throughput_parser.add_argument(
        "--shards",
        action="append",
        type=int,
        dest="shard_counts",
        metavar="N",
        help="measure the sharded scatter-gather lane at N shards instead "
        "(repeatable; writes BENCH_sharding.json unless --out is given)",
    )
    throughput_parser.add_argument(
        "--parallel",
        action="append",
        type=int,
        dest="parallel_degrees",
        metavar="N",
        help="measure the partition-parallel scan lane at degree N instead "
        "(repeatable; writes BENCH_parallel.json unless --out is given)",
    )
    throughput_parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="output JSON path (default ./BENCH_throughput.json, "
        "./BENCH_sharding.json with --shards, or ./BENCH_parallel.json "
        "with --parallel)",
    )

    backends_parser = subparsers.add_parser(
        "backends", help="list registered execution backends"
    )
    backends_parser.add_argument(
        "--stats",
        action="store_true",
        help="run the standard workload twice and report transpilation-cache "
        "hit/miss counters plus per-query timings",
    )
    backends_parser.add_argument(
        "--rows", type=int, default=500, help="mock rows per table for --stats"
    )
    backends_parser.add_argument(
        "--shards",
        type=int,
        default=0,
        metavar="N",
        help="with --stats: serve the workload through an N-shard "
        "coordinator and report per-shard pool/cache counters",
    )
    backends_parser.add_argument(
        "--json",
        action="store_true",
        help="emit machine-readable JSON (registry listing; with --stats also "
        "cache hit/miss counters and per-query timing percentiles)",
    )

    tables_parser = subparsers.add_parser(
        "tables", help="regenerate a paper evaluation table"
    )
    tables_parser.add_argument(
        "--table", required=True, choices=("1", "2", "3", "4", "5", "speed")
    )

    subparsers.add_parser("suite", help="list the benchmark suite")
    return parser


def _load_graph_schema(arguments) -> GraphSchema:
    if getattr(arguments, "example", None):
        return parse_graph_schema(_EXAMPLE_SCHEMAS[arguments.example])
    if arguments.graph_schema is None:
        raise SystemExit("provide --graph-schema FILE or --example NAME")
    return parse_graph_schema(arguments.graph_schema.read_text())


def _command_transpile(arguments) -> int:
    from repro.common.errors import GraphitiError
    from repro.sql.dialect import dialect_for

    try:
        dialect = dialect_for(arguments.dialect)
    except GraphitiError as error:
        raise SystemExit(str(error))
    from repro.sql.optimize import optimize

    schema = _load_graph_schema(arguments)
    query = parse_cypher(arguments.cypher, schema)
    sdt = infer_sdt(schema)
    translated = optimize(
        transpile(query, schema, sdt), level=arguments.opt, schema=sdt.schema
    )
    print("-- induced relational schema")
    for relation in sdt.schema.relations:
        print(f"--   {relation}")
    print(to_sql_text(translated, sdt.schema, optimized=False, dialect=dialect))
    return 0


def _command_run(arguments) -> int:
    from repro.backends import BackendUnavailable, GraphitiService
    from repro.common.budget import QueryBudget, QueryBudgetExceeded
    from repro.common.errors import GraphitiError

    schema = _load_graph_schema(arguments)
    queries = list(arguments.cyphers)
    budget = None
    if (
        arguments.timeout is not None
        or arguments.max_rows is not None
        or arguments.max_depth is not None
    ):
        budget = QueryBudget(
            max_rows=arguments.max_rows,
            max_depth=arguments.max_depth,
            timeout_seconds=arguments.timeout,
        )
    if arguments.async_workers > 0 and arguments.workers != 1:
        raise SystemExit(
            "--workers and --async-workers are mutually exclusive: pick the "
            "threaded or the asyncio lane"
        )
    workers = max(1, arguments.workers)
    async_workers = max(0, arguments.async_workers)
    shards = max(0, getattr(arguments, "shards", 0))
    parallel = max(1, getattr(arguments, "parallel", 1))
    adaptive_kwargs = {}
    feedback_ratio = getattr(arguments, "feedback_ratio", None)
    if feedback_ratio is not None:
        # 0 (or anything ≤ 1) turns adaptive re-planning off.
        adaptive_kwargs["feedback_ratio"] = (
            feedback_ratio if feedback_ratio > 1.0 else None
        )
    if shards > 0:
        from repro.backends import ShardedGraphitiService

        def make_service():
            return ShardedGraphitiService(
                schema,
                num_shards=shards,
                default_backend=arguments.backend,
                opt_level=arguments.opt,
                pool_size=max(4, workers, async_workers, parallel),
                persistent_cache=arguments.persistent_cache or None,
                parallelism=parallel,
                **adaptive_kwargs,
            )

    else:

        def make_service():
            return GraphitiService(
                schema,
                default_backend=arguments.backend,
                opt_level=arguments.opt,
                pool_size=max(4, workers, async_workers, parallel),
                persistent_cache=arguments.persistent_cache or None,
                parallelism=parallel,
                **adaptive_kwargs,
            )

    with make_service() as service:
        service.load_mock(arguments.rows, seed=arguments.seed)
        try:
            if arguments.show_sql:
                for text in queries:
                    print("-- rendered SQL")
                    print(service.transpile_to_sql(text))
                    print()
            if arguments.explain:
                for text in queries:
                    print("-- query plan")
                    print(service.explain(text))
                    print()
            start = time.perf_counter()
            if async_workers:
                results = _run_batch_async(
                    service, queries, async_workers, budget=budget
                )
            else:
                results = service.run_many(queries, workers=workers, budget=budget)
            seconds = time.perf_counter() - start
        except QueryBudgetExceeded as error:
            print(f"query budget exceeded: {error}", file=sys.stderr)
            for key, value in error.diagnostics().items():
                print(f"  {key}: {value}", file=sys.stderr)
            return 2
        except (BackendUnavailable, GraphitiError) as error:
            raise SystemExit(str(error))
        for index, result in enumerate(results):
            if len(queries) > 1:
                print(f"-- [{index + 1}/{len(queries)}] {queries[index]}")
            shown = result.rows[: arguments.limit]
            print(" | ".join(result.attributes))
            for row in shown:
                print(" | ".join(repr(v) for v in row))
            if len(result.rows) > len(shown):
                print(f"... ({len(result.rows)} rows total)")
        total_rows = sum(len(result.rows) for result in results)
        if len(queries) <= 1:
            batch = ""
        elif async_workers:
            batch = f" ({len(queries)} queries, async concurrency {async_workers})"
        else:
            batch = f" ({len(queries)} queries, {workers} workers)"
        sharded = f", {shards} shards" if shards > 0 else ""
        par = f", parallel {parallel}" if parallel > 1 else ""
        print(
            f"-- {total_rows} rows on {arguments.backend}{sharded}{par}{batch} "
            f"({seconds * 1000:.2f} ms)"
        )
        if arguments.persistent_cache:
            info = service.persistent_cache_info()
            print(
                f"-- persistent cache: hits={info.hits} misses={info.misses} "
                f"entries={info.currsize}"
            )
    return 0


def _command_explain(arguments) -> int:
    import json

    from repro.backends import BackendUnavailable, GraphitiService
    from repro.common.errors import GraphitiError
    from repro.observability.explain import explain_query

    schema = _load_graph_schema(arguments)
    shards = max(0, getattr(arguments, "shards", 0))
    parallel = max(1, getattr(arguments, "parallel", 1))
    if shards > 0:
        from repro.backends import ShardedGraphitiService

        service_context = ShardedGraphitiService(
            schema,
            num_shards=shards,
            default_backend=arguments.backend,
            opt_level=arguments.opt,
            parallelism=parallel,
        )
    else:
        service_context = GraphitiService(
            schema,
            default_backend=arguments.backend,
            opt_level=arguments.opt,
            parallelism=parallel,
        )
    with service_context as service:
        service.load_mock(arguments.rows, seed=arguments.seed)
        try:
            report = explain_query(
                service, arguments.cypher, backend=arguments.backend
            )
        except (BackendUnavailable, GraphitiError) as error:
            raise SystemExit(str(error))
        if arguments.json:
            print(json.dumps(report.to_dict(), indent=2))
        else:
            print("\n".join(report.render(show_sql=not arguments.no_sql)))
    return 0


def _run_batch_async(
    service, queries: list[str], concurrency: int, budget=None
) -> list:
    """Drive *queries* through the asyncio serving layer (``--async-workers``)."""
    import asyncio

    from repro.backends import (
        AsyncGraphitiService,
        AsyncShardedGraphitiService,
        ShardedGraphitiService,
    )

    async_class = (
        AsyncShardedGraphitiService
        if isinstance(service, ShardedGraphitiService)
        else AsyncGraphitiService
    )

    async def drive() -> list:
        async with async_class(
            service, max_concurrency=concurrency
        ) as async_service:
            return await async_service.run_many(
                queries, concurrency=concurrency, budget=budget
            )

    return asyncio.run(drive())


def _command_bench_throughput(arguments) -> int:
    from repro.backends import BackendUnavailable

    if getattr(arguments, "parallel_degrees", None):
        return _bench_throughput_parallel(arguments)
    if arguments.shard_counts:
        return _bench_throughput_sharded(arguments)
    from repro.backends.throughput import MODES, format_report, run_bench

    out_path = arguments.out or Path("BENCH_throughput.json")
    modes = MODES if arguments.mode == "both" else (arguments.mode,)
    try:
        report = run_bench(
            rows_per_table=arguments.rows,
            batch_size=arguments.batch,
            repeats=arguments.repeats,
            backends=tuple(arguments.backends) if arguments.backends else None,
            out_path=out_path,
            modes=modes,
        )
    except BackendUnavailable as error:
        raise SystemExit(str(error))
    print("\n".join(format_report(report)))
    print(f"wrote {out_path}")
    summary = report["summary"]
    ok = (
        summary["all_concurrent_results_valid"]
        and summary["all_batches_consistent_with_serial"]
    )
    return 0 if ok else 1


def _bench_throughput_parallel(arguments) -> int:
    """The ``--parallel`` lane: partition-parallel scans vs serial."""
    from repro.backends import BackendUnavailable
    from repro.backends.parallel_bench import format_report, run_bench

    out_path = arguments.out or Path("BENCH_parallel.json")
    backend = arguments.backends[0] if arguments.backends else "sqlite-memory"
    try:
        report = run_bench(
            rows_per_table=arguments.rows,
            repeats=arguments.repeats,
            degrees=tuple(arguments.parallel_degrees),
            backend=backend,
            out_path=out_path,
        )
    except BackendUnavailable as error:
        raise SystemExit(str(error))
    print("\n".join(format_report(report)))
    print(f"wrote {out_path}")
    summary = report["summary"]
    ok = (
        summary["all_results_valid"]
        and summary["all_parallel_consistent_with_serial"]
        and summary["overhead_within_3x_budget"]
    )
    return 0 if ok else 1


def _bench_throughput_sharded(arguments) -> int:
    """The ``--shards`` lane: sharded scatter-gather vs a single backend."""
    from repro.backends import BackendUnavailable
    from repro.backends.shard_bench import format_report, run_bench

    out_path = arguments.out or Path("BENCH_sharding.json")
    backend = arguments.backends[0] if arguments.backends else "sqlite-memory"
    try:
        report = run_bench(
            rows_per_table=arguments.rows,
            batch_size=arguments.batch,
            repeats=arguments.repeats,
            shard_counts=tuple(arguments.shard_counts),
            backend=backend,
            out_path=out_path,
        )
    except BackendUnavailable as error:
        raise SystemExit(str(error))
    print("\n".join(format_report(report)))
    print(f"wrote {out_path}")
    summary = report["summary"]
    ok = (
        summary["all_results_valid"]
        and summary["all_batches_consistent_with_single"]
    )
    return 0 if ok else 1


def _command_bench_backends(arguments) -> int:
    from repro.backends import BackendUnavailable, available_backends, compare_backends

    backends = tuple(arguments.backends) if arguments.backends else None
    print(f"available backends: {', '.join(available_backends())}")
    try:
        rows = compare_backends(
            rows_per_table=arguments.rows,
            repeats=arguments.repeats,
            backends=backends,
        )
    except BackendUnavailable as error:
        raise SystemExit(str(error))
    print(f"== backend comparison ({arguments.rows} rows/table) ==")
    for row in rows:
        print(row.format())
    return 0 if all(row.matches_reference for row in rows) else 1


def _command_backends(arguments) -> int:
    import json

    from repro.backends import backend_info, registered_backends

    as_json = getattr(arguments, "json", False)
    registry = [
        {
            "name": name,
            "available": backend_info(name).available,
            "dialect": backend_info(name).backend_class.dialect.name,
            "description": backend_info(name).description,
        }
        for name in registered_backends()
    ]
    if not as_json:
        for entry in registry:
            status = "available" if entry["available"] else "unavailable"
            detail = f"  — {entry['description']}" if entry["description"] else ""
            print(f"{entry['name']:15} [{status}]  dialect={entry['dialect']}{detail}")
    stats_document = None
    if getattr(arguments, "stats", False):
        stats_document = _collect_backend_stats(
            arguments.rows,
            echo=not as_json,
            shards=max(0, getattr(arguments, "shards", 0)),
        )
    if as_json:
        document = {"backends": registry}
        if stats_document is not None:
            document.update(stats_document)
        print(json.dumps(document, indent=2))
    return 0


def _collect_backend_stats(
    rows_per_table: int, echo: bool = True, shards: int = 0
) -> dict:
    """Run the standard workload twice; report cache + timing counters.

    The second round should be all cache hits — the visible proof that the
    optimizer's (costlier) level-2 planning is paid once per query text.
    Returns the machine-readable document (``repro backends --stats --json``);
    with *echo* the human-format tables are printed as before.  With
    *shards* > 0 the workload is served through an N-shard scatter-gather
    coordinator and the document gains a ``sharding`` section with the
    partition layout and per-shard pool/cache counters.
    """
    from repro.backends import GraphitiService
    from repro.backends.comparison import DEFAULT_SCHEMA, DEFAULT_WORKLOAD

    if shards > 0:
        from repro.backends import ShardedGraphitiService

        service_context = ShardedGraphitiService(DEFAULT_SCHEMA, num_shards=shards)
    else:
        service_context = GraphitiService(DEFAULT_SCHEMA)
    with service_context as service:
        service.load_mock(rows_per_table)
        for _ in range(2):
            for text in DEFAULT_WORKLOAD.values():
                service.run(text)
        # The legacy "cache" keys are now a *view* over the metrics
        # registry (same numbers the CacheInfo counters report — every
        # lookup passes through prepare(), which feeds both).
        snapshot = service.metrics.snapshot()
        cache_series = snapshot.get("repro_transpile_cache_total", {}).get(
            "series", []
        )

        def cache_count(result: str) -> int:
            return int(
                sum(
                    entry["value"]
                    for entry in cache_series
                    if entry["labels"].get("tier") == "memory"
                    and entry["labels"].get("result") == result
                )
            )

        info = service.cache_info()
        queries = []
        for stat in service.query_stats():
            label = next(
                (k for k, v in DEFAULT_WORKLOAD.items() if v == stat.cypher_text),
                stat.cypher_text[:30],
            )
            queries.append(
                {
                    "label": label,
                    "cypher": stat.cypher_text,
                    "executions": stat.executions,
                    "mean_ms": round(stat.mean_seconds * 1000, 3),
                    "p50_ms": round(stat.p50_seconds * 1000, 3),
                    "p95_ms": round(stat.p95_seconds * 1000, 3),
                    "last_ms": round(stat.last_seconds * 1000, 3),
                }
            )
        document = {
            "meta": {
                "rows_per_table": rows_per_table,
                "rounds": 2,
                # Deprecation note: "cache" and "queries" are kept as
                # backward-compatible views; new consumers should read the
                # "metrics" section (the full registry snapshot).
                "note": "'cache'/'queries' are compatibility views over "
                "the 'metrics' registry snapshot",
            },
            "opt_level": service.opt_level,
            "cache": {
                "hits": cache_count("hit"),
                "misses": cache_count("miss"),
                "currsize": info.currsize,
                "maxsize": info.maxsize,
            },
            "queries": queries,
            "metrics": snapshot,
        }
        if shards > 0:
            document["sharding"] = {
                "partition": service.partition_report(),
                "per_shard": service.shard_stats(),
            }
        if echo:
            print()
            print(f"== transpilation cache (opt level {service.opt_level}) ==")
            print(
                f"hits={info.hits} misses={info.misses} "
                f"size={info.currsize}/{info.maxsize}"
            )
            print()
            print("== per-query timings ==")
            for row in queries:
                print(
                    f"{row['label']:10} runs={row['executions']}  "
                    f"mean={row['mean_ms']:7.2f} ms  "
                    f"p50={row['p50_ms']:7.2f} ms  "
                    f"p95={row['p95_ms']:7.2f} ms  "
                    f"last={row['last_ms']:7.2f} ms"
                )
            if shards > 0:
                partition = document["sharding"]["partition"]
                print()
                print(f"== sharding ({partition['shards']} shards) ==")
                print(
                    f"rows per shard: {partition['rows_per_shard']} "
                    f"(total {partition['total_rows']}); cross-shard edges: "
                    f"{partition['cross_shard_edges']}"
                )
                for entry in document["sharding"]["per_shard"]:
                    cache = entry["cache"]
                    print(
                        f"shard {entry['shard']}: rows={entry['rows']}  "
                        f"queries={entry['queries']}  "
                        f"cache hits={cache['hits']} misses={cache['misses']}"
                    )
        return document


def _command_check(arguments) -> int:
    if arguments.benchmark:
        from repro.benchmarks.suite import benchmark_suite

        matches = [b for b in benchmark_suite() if b.id == arguments.benchmark]
        if not matches:
            raise SystemExit(f"unknown benchmark id {arguments.benchmark!r}")
        benchmark = matches[0]
        graph_schema = benchmark.graph_schema
        relational_schema = benchmark.relational_schema
        transformer = benchmark.transformer
        cypher = benchmark.cypher_query
        sql = benchmark.sql_query
        print(f"benchmark {benchmark.id} "
              f"(expected {'equivalent' if benchmark.expected_equivalent else 'NOT equivalent'})")
    else:
        required = ("graph_schema", "relational_schema", "transformer", "cypher", "sql")
        missing = [name for name in required if getattr(arguments, name) is None]
        if missing:
            raise SystemExit(
                "missing arguments: " + ", ".join(f"--{m.replace('_', '-')}" for m in missing)
            )
        graph_schema = parse_graph_schema(arguments.graph_schema.read_text())
        relational_schema = parse_relational_schema(
            arguments.relational_schema.read_text()
        )
        transformer = parse_transformer(arguments.transformer.read_text())
        cypher = parse_cypher(arguments.cypher, graph_schema)
        sql = parse_sql(arguments.sql)

    if arguments.backend == "bounded":
        checker = BoundedChecker(
            max_bound=arguments.max_bound,
            samples_per_bound=arguments.samples,
            time_budget_seconds=arguments.budget,
        )
    else:
        checker = DeductiveChecker(time_budget_seconds=arguments.budget)

    result = check_equivalence(
        graph_schema, cypher, relational_schema, sql, transformer, checker
    )
    print(f"verdict: {result.verdict.value}")
    if result.outcome.detail:
        print(f"detail:  {result.outcome.detail}")
    if result.verdict is Verdict.BOUNDED_EQUIVALENT:
        print(
            f"checked bound {result.outcome.checked_bound} "
            f"({result.outcome.instances_checked} instances, "
            f"{result.outcome.elapsed_seconds:.2f}s)"
        )
    if result.counterexample is not None:
        print(result.counterexample.describe())
    return 0 if result.verdict is not Verdict.NOT_EQUIVALENT else 1


def _command_tables(arguments) -> int:
    from repro.benchmarks import evaluation

    if arguments.table == "1":
        rows = evaluation.table1_statistics()
    elif arguments.table == "2":
        rows = evaluation.table2_bounded()
    elif arguments.table == "3":
        rows = evaluation.table3_deductive()
    elif arguments.table == "4":
        rows = evaluation.table4_execution()
    elif arguments.table == "5":
        rows = evaluation.table5_baseline()
    else:
        print(evaluation.transpilation_speed().format())
        return 0
    for row in rows:
        print(row.format())
    return 0


def _command_suite(arguments) -> int:
    from repro.benchmarks.suite import benchmark_suite

    for benchmark in benchmark_suite():
        marker = "=" if benchmark.expected_equivalent else "≠"
        bug = f"  [{benchmark.bug_class}]" if benchmark.bug_class else ""
        print(f"{marker} {benchmark.id:55} {benchmark.category}{bug}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
