"""Lifting relational counterexamples back to property graphs.

When the bounded checker refutes equivalence it produces a relational
instance over the *induced* schema.  Because the standard database
transformer is a bijection between graph instances and induced-schema
instances (each node/edge type maps to exactly one table), the witness can
be lifted back into a property graph — the paper's Figure 23 shows such a
lifted counterexample.

``lift_counterexample`` is the exact inverse of applying ``Φ_sdt``:
``lift(Φ_sdt(G)) == G`` up to element identity, a property the test suite
checks with hypothesis.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import SchemaError
from repro.common.values import Value
from repro.core.sdt import SdtResult
from repro.graph.builder import GraphBuilder
from repro.graph.instance import Node, PropertyGraph
from repro.graph.schema import GraphSchema
from repro.relational.instance import Database, Table


@dataclass
class Counterexample:
    """A witness of non-equivalence: paired instances plus query outputs."""

    graph: PropertyGraph
    induced_database: Database
    target_database: Database
    cypher_result: Table
    sql_result: Table
    bound: int = 0
    note: str = ""

    def describe(self) -> str:
        lines = [
            "counterexample (queries disagree on equivalent instances):",
            "--- graph instance ---",
            str(self.graph),
            "--- relational instance ---",
            str(self.target_database),
            "--- Cypher result ---",
            str(self.cypher_result),
            "--- SQL result ---",
            str(self.sql_result),
        ]
        if self.note:
            lines.append(f"note: {self.note}")
        return "\n".join(lines)

    def to_cypher_create(self) -> str:
        """The witness graph as an executable Cypher ``CREATE`` statement,
        ready to paste into a Neo4j console to replay the discrepancy."""
        return graph_to_cypher_create(self.graph)


def graph_to_cypher_create(graph: PropertyGraph) -> str:
    """Render *graph* as one Cypher ``CREATE`` statement."""
    from repro.common.values import is_null

    def render_value(value: Value) -> str:
        if is_null(value):
            return "null"
        if isinstance(value, bool):
            return "true" if value else "false"
        if isinstance(value, str):
            escaped = value.replace("\\", "\\\\").replace("'", "\\'")
            return f"'{escaped}'"
        return repr(value)

    def render_properties(pairs: tuple[tuple[str, Value], ...]) -> str:
        if not pairs:
            return ""
        body = ", ".join(f"{key}: {render_value(value)}" for key, value in pairs)
        return f" {{{body}}}"

    parts: list[str] = []
    names: dict[int, str] = {}
    for index, node in enumerate(graph.nodes, start=1):
        names[node.uid] = f"n{index}"
        parts.append(
            f"({names[node.uid]}:{node.label}{render_properties(node.properties)})"
        )
    for edge in graph.edges:
        source = names[edge.source_uid]
        target = names[edge.target_uid]
        parts.append(
            f"({source})-[:{edge.label}{render_properties(edge.properties)}]->({target})"
        )
    if not parts:
        return "// empty graph"
    return "CREATE\n  " + ",\n  ".join(parts)


def lift_counterexample(
    graph_schema: GraphSchema, sdt: SdtResult, induced: Database
) -> PropertyGraph:
    """Reconstruct the property graph whose SDT image is *induced*."""
    builder = GraphBuilder(graph_schema)
    nodes_by_key: dict[tuple[str, Value], Node] = {}
    for node_type in graph_schema.node_types:
        table = induced.table(sdt.table_for(node_type.label))
        for row in table:
            properties = dict(zip(node_type.keys, row))
            node = builder.add_node(node_type.label, **properties)
            key_value = properties[node_type.default_key]
            nodes_by_key[(node_type.label, key_value)] = node
    for edge_type in graph_schema.edge_types:
        table = induced.table(sdt.table_for(edge_type.label))
        for row in table:
            *property_values, source_key, target_key = row
            properties = dict(zip(edge_type.keys, property_values))
            source = nodes_by_key.get((edge_type.source, source_key))
            target = nodes_by_key.get((edge_type.target, target_key))
            if source is None or target is None:
                raise SchemaError(
                    f"induced instance has a dangling {edge_type.label!r} edge "
                    f"({source_key!r} -> {target_key!r}); foreign keys violated"
                )
            builder.add_edge(edge_type.label, source, target, **properties)
    return builder.build()
