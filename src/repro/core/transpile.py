"""Syntax-directed transpilation of Featherweight Cypher into Featherweight
SQL over the induced relational schema (paper Section 5.2, Figures 16-18,
and Appendix B Figures 21-22).

The judgment forms map onto functions:

* ``Φsdt, Ψ_R ⊢ Q  --query-->   Q'``   →  :func:`transpile`
* ``Φsdt, Ψ_R ⊢ C  --clause-->  X, Q`` →  :func:`_translate_clause`
* ``Φsdt, Ψ_R ⊢ PP --pattern--> X, Q`` →  :func:`_translate_pattern`
* ``Φsdt, Ψ_R ⊢ E  --expr-->    E'``   →  :func:`_translate_expression`
* ``Φsdt, Ψ_R ⊢ φ  --pred-->    φ'``   →  :func:`_translate_predicate`

Attribute-naming invariant: every translated clause produces a SQL query
whose output attributes are exactly the *flattened* names ``{X}_{K}`` for
each in-scope variable ``X`` and each induced-table attribute ``K`` of its
label (node keys; edge keys plus ``SRC``/``TGT``).  The C-Match2/C-OptMatch
rules re-establish the invariant after their ``ρ_T1 ⋈ ρ_T2`` join with a
projection, which corresponds to the paper's flattened CTE columns
(``c1_CID``, ``s_SID``, ... in Figure 7).

Cypher path patterns become chains of inner joins whose predicates connect
edge-table ``SRC``/``TGT`` foreign keys to endpoint primary keys (PT-Path);
``MATCH`` accumulation becomes an inner join on shared-variable primary keys
(C-Match2); ``OPTIONAL MATCH`` becomes a left outer join (C-OptMatch).

Variable-length relationship patterns (PT-Reach, this library's extension)
become *recursive CTEs*: each ``-[r:REL*lo..hi]->`` occurrence contributes a
``WITH RECURSIVE`` fixpoint over the oriented one-hop ``(src, tgt)`` pairs of
the induced edge table — depth-tracked, distinct-union (cycle-safe), with the
depth saturating at ``max(lo, 1)`` when the upper bound is open — whose
distinct qualifying endpoint pairs are cross-joined into the pattern and
connected to the endpoint scans like an ordinary edge occurrence.  A
``min_hops`` of 0 unions in the identity pairs of the endpoint node table.
The fixpoint carries :class:`repro.sql.ast.ReachInfo` so the cost-based
planner can later unroll small bounded traversals into k-hop join chains.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import count
from typing import Callable

from repro.common.errors import TranspileError
from repro.core.sdt import SOURCE_ATTRIBUTE, TARGET_ATTRIBUTE, SdtResult
from repro.cypher import ast as cy
from repro.graph.schema import EdgeType, GraphSchema, NodeType
from repro.sql import ast as sq

#: Maps a (variable, induced attribute) pair to an attribute reference string.
Naming = Callable[[str, str], str]

#: Output columns of a variable-length reach relation (PT-Reach).
REACH_SOURCE = "src"
REACH_TARGET = "tgt"
REACH_DEPTH = "depth"


def flat(variable: str, key: str) -> str:
    """The flattened output-attribute name for ``X.K``."""
    return f"{variable}_{key}"


@dataclass(frozen=True)
class ClauseOutput:
    """``X, Q`` — in-scope variables (name → label) and the SQL translation."""

    variables: dict[str, str]
    query: sq.Query


class Transpiler:
    """Carries ``Φ_sdt`` / ``Ψ'_R`` and fresh-name state through translation."""

    def __init__(self, graph_schema: GraphSchema, sdt: SdtResult) -> None:
        self.graph_schema = graph_schema
        self.sdt = sdt
        self._fresh = count(1)

    # -- queries (Figure 16) ------------------------------------------------

    def translate_query(self, query: cy.Query) -> sq.Query:
        if isinstance(query, cy.Return):
            return self._translate_return(query)
        if isinstance(query, cy.OrderBy):
            inner = self.translate_query(query.query)
            keys = tuple(sq.AttributeRef(k) for k in query.keys)
            return sq.OrderBy(inner, keys, tuple(query.ascending), query.limit)
        if isinstance(query, cy.Union):
            return sq.UnionOp(
                self.translate_query(query.left),
                self.translate_query(query.right),
                all=False,
            )
        if isinstance(query, cy.UnionAll):
            return sq.UnionOp(
                self.translate_query(query.left),
                self.translate_query(query.right),
                all=True,
            )
        raise TranspileError(f"cannot transpile query node {type(query).__name__}")

    def _translate_return(self, query: cy.Return) -> sq.Query:
        clause = self.translate_clause(query.clause)
        naming = self._flat_naming(clause.variables)
        expressions = [
            self._translate_expression(expr, naming, clause.variables)
            for expr in query.expressions
        ]
        columns = sq.columns_of(expressions, query.names)
        if not any(self._has_aggregate(e) for e in query.expressions):
            # Q-Ret: plain projection with renaming.
            return sq.Projection(clause.query, columns, distinct=query.distinct)
        # Q-Agg: group by the non-aggregate output expressions.
        grouping = tuple(
            translated
            for translated, original in zip(expressions, query.expressions)
            if not self._has_aggregate(original)
        )
        grouped: sq.Query = sq.GroupBy(clause.query, grouping, columns, sq.TRUE)
        if query.distinct:
            passthrough = tuple(
                sq.OutputColumn(c.alias, sq.AttributeRef(c.alias)) for c in columns
            )
            grouped = sq.Projection(grouped, passthrough, distinct=True)
        return grouped

    # -- clauses (Figure 17) -------------------------------------------------

    def translate_clause(self, clause: cy.Clause) -> ClauseOutput:
        if isinstance(clause, cy.Match):
            if clause.previous is None:
                return self._translate_first_match(clause)
            return self._translate_chained_match(
                clause.previous, clause.pattern, clause.predicate, sq.JoinKind.INNER
            )
        if isinstance(clause, cy.OptMatch):
            return self._translate_chained_match(
                clause.previous, clause.pattern, clause.predicate, sq.JoinKind.LEFT
            )
        if isinstance(clause, cy.With):
            return self._translate_with(clause)
        raise TranspileError(f"cannot transpile clause node {type(clause).__name__}")

    def _translate_first_match(self, clause: cy.Match) -> ClauseOutput:
        """C-Match1: ``σ_φ'(Q_PP)``."""
        pattern = self._translate_pattern(clause.pattern)
        naming = self._flat_naming(pattern.variables)
        predicate = self._translate_predicate(clause.predicate, naming, pattern.variables)
        return ClauseOutput(pattern.variables, sq.Selection(pattern.query, predicate))

    def _translate_chained_match(
        self,
        previous: cy.Clause,
        pattern: cy.PathPattern,
        predicate: cy.Predicate,
        kind: sq.JoinKind,
    ) -> ClauseOutput:
        """C-Match2 / C-OptMatch: join on shared-variable primary keys."""
        left = self.translate_clause(previous)
        right = self._translate_pattern(pattern)
        t1 = self._fresh_table("T")
        t2 = self._fresh_table("T")
        shared = sorted(set(left.variables) & set(right.variables))
        for variable in shared:
            if left.variables[variable] != right.variables[variable]:
                raise TranspileError(
                    f"variable {variable!r} used with labels "
                    f"{left.variables[variable]!r} and {right.variables[variable]!r}"
                )

        def joined_naming(variable: str, key: str) -> str:
            if variable in left.variables:
                return f"{t1}.{flat(variable, key)}"
            if variable in right.variables:
                return f"{t2}.{flat(variable, key)}"
            raise TranspileError(f"unbound variable {variable!r} in match predicate")

        merged_vars = dict(left.variables)
        merged_vars.update(right.variables)
        join_predicate = self._translate_predicate(predicate, joined_naming, merged_vars)
        for variable in shared:
            pk = self._primary_key_of(left.variables[variable])
            equality = sq.Comparison(
                "=",
                sq.AttributeRef(f"{t1}.{flat(variable, pk)}"),
                sq.AttributeRef(f"{t2}.{flat(variable, pk)}"),
            )
            join_predicate = (
                equality if join_predicate == sq.TRUE else sq.And(join_predicate, equality)
            )
        join = sq.Join(
            kind,
            sq.Renaming(t1, left.query),
            sq.Renaming(t2, right.query),
            join_predicate,
        )
        # Re-establish the flat-attribute invariant: shared variables read
        # from the left (non-null) side, pattern-only variables from the right.
        columns: list[sq.OutputColumn] = []
        for variable, label in merged_vars.items():
            prefix = t1 if variable in left.variables else t2
            for key in self._attributes_of(label):
                columns.append(
                    sq.OutputColumn(
                        flat(variable, key),
                        sq.AttributeRef(f"{prefix}.{flat(variable, key)}"),
                    )
                )
        return ClauseOutput(merged_vars, sq.Projection(join, tuple(columns)))

    def _translate_with(self, clause: cy.With) -> ClauseOutput:
        """C-With: project to the kept variables, renaming old → new."""
        inner = self.translate_clause(clause.previous)
        variables: dict[str, str] = {}
        columns: list[sq.OutputColumn] = []
        for old, new in zip(clause.old_names, clause.new_names):
            if old not in inner.variables:
                raise TranspileError(f"WITH references unbound variable {old!r}")
            label = inner.variables[old]
            variables[new] = label
            for key in self._attributes_of(label):
                columns.append(
                    sq.OutputColumn(flat(new, key), sq.AttributeRef(flat(old, key)))
                )
        return ClauseOutput(variables, sq.Projection(inner.query, tuple(columns)))

    # -- patterns (Figure 18) -------------------------------------------------

    def _translate_pattern(self, pattern: cy.PathPattern) -> ClauseOutput:
        """PT-Node / PT-Path / PT-Reach with flattened output attributes.

        Repeated variables inside one pattern are scanned once per
        occurrence under a fresh alias and constrained equal on their
        primary key, then surfaced once in the output.  Variable-length
        edge occurrences contribute no scan of their own: each becomes a
        reach relation (recursive CTE over one-hop pairs) cross-joined
        into the pattern and connected to its endpoint scans.
        """
        variables: dict[str, str] = {}
        scans: list[tuple[str, str, str]] = []  # (alias, variable, label)
        alias_of_occurrence: list[str] = []

        def register(variable: str, label: str) -> str:
            if variable in variables:
                if variables[variable] != label:
                    raise TranspileError(
                        f"variable {variable!r} used with labels "
                        f"{variables[variable]!r} and {label!r}"
                    )
                alias = self._fresh_table(f"{variable}__dup")
            else:
                variables[variable] = label
                alias = variable
            scans.append((alias, variable, label))
            return alias

        for element in pattern:
            if isinstance(element, cy.VarLengthEdgePattern):
                # The traversal variable is not bindable — no scan, no
                # output columns; the reach relation joins in below.
                alias_of_occurrence.append("")
            else:
                alias_of_occurrence.append(register(element.variable, element.label))

        query: sq.Query | None = None
        duplicate_constraints: list[sq.Predicate] = []
        alias_by_variable: dict[str, str] = {}
        for alias, variable, label in scans:
            scan: sq.Query = sq.Renaming(
                alias, sq.Relation(self.sdt.table_for(label))
            )
            if query is None:
                query = scan
            else:
                query = sq.Join(sq.JoinKind.CROSS, query, scan, sq.TRUE)
            if variable in alias_by_variable and alias != alias_by_variable[variable]:
                pk = self._primary_key_of(label)
                duplicate_constraints.append(
                    sq.Comparison(
                        "=",
                        sq.AttributeRef(f"{alias_by_variable[variable]}.{pk}"),
                        sq.AttributeRef(f"{alias}.{pk}"),
                    )
                )
            else:
                alias_by_variable[variable] = alias

        connection_predicates: list[sq.Predicate] = []
        for index in range(1, len(pattern), 2):
            edge = pattern[index]
            left_alias = alias_of_occurrence[index - 1]
            edge_alias = alias_of_occurrence[index]
            right_alias = alias_of_occurrence[index + 1]
            left_node = pattern[index - 1]
            right_node = pattern[index + 1]
            assert isinstance(left_node, cy.NodePattern)
            assert isinstance(right_node, cy.NodePattern)
            if isinstance(edge, cy.VarLengthEdgePattern):
                assert query is not None
                reach_alias = self._fresh_table("VL")
                query = sq.Join(
                    sq.JoinKind.CROSS,
                    query,
                    sq.Renaming(reach_alias, self._reach_query(edge, left_node, right_node)),
                    sq.TRUE,
                )
                pk = self._primary_key_of(left_node.label)
                connection_predicates.append(
                    sq.And(
                        sq.Comparison(
                            "=",
                            sq.AttributeRef(f"{reach_alias}.{REACH_SOURCE}"),
                            sq.AttributeRef(f"{left_alias}.{pk}"),
                        ),
                        sq.Comparison(
                            "=",
                            sq.AttributeRef(f"{reach_alias}.{REACH_TARGET}"),
                            sq.AttributeRef(f"{right_alias}.{pk}"),
                        ),
                    )
                )
                continue
            assert isinstance(edge, cy.EdgePattern)
            connection_predicates.append(
                self._edge_connection(
                    edge, left_node, right_node, left_alias, edge_alias, right_alias
                )
            )

        assert query is not None
        predicate = _conjoin(connection_predicates + duplicate_constraints)
        if predicate != sq.TRUE:
            query = sq.Selection(query, predicate)

        columns: list[sq.OutputColumn] = []
        for variable, label in variables.items():
            alias = alias_by_variable[variable]
            for key in self._attributes_of(label):
                columns.append(
                    sq.OutputColumn(flat(variable, key), sq.AttributeRef(f"{alias}.{key}"))
                )
        return ClauseOutput(variables, sq.Projection(query, tuple(columns)))

    def _edge_connection(
        self,
        edge: cy.EdgePattern,
        left_node: cy.NodePattern,
        right_node: cy.NodePattern,
        left_alias: str,
        edge_alias: str,
        right_alias: str,
    ) -> sq.Predicate:
        """The PT-Path join predicate ``φ ∧ φ'`` for one edge occurrence."""
        edge_type = self.graph_schema.edge_type(edge.label)
        forward_ok = (
            edge_type.source == left_node.label and edge_type.target == right_node.label
        )
        backward_ok = (
            edge_type.source == right_node.label and edge_type.target == left_node.label
        )

        def orient(source_alias: str, source_label: str, target_alias: str, target_label: str):
            source_pk = self._primary_key_of(source_label)
            target_pk = self._primary_key_of(target_label)
            return sq.And(
                sq.Comparison(
                    "=",
                    sq.AttributeRef(f"{edge_alias}.{SOURCE_ATTRIBUTE}"),
                    sq.AttributeRef(f"{source_alias}.{source_pk}"),
                ),
                sq.Comparison(
                    "=",
                    sq.AttributeRef(f"{edge_alias}.{TARGET_ATTRIBUTE}"),
                    sq.AttributeRef(f"{target_alias}.{target_pk}"),
                ),
            )

        if edge.direction is cy.Direction.OUT:
            if not forward_ok:
                raise TranspileError(
                    f"edge {edge.label!r} cannot run from {left_node.label!r} "
                    f"to {right_node.label!r}"
                )
            return orient(left_alias, left_node.label, right_alias, right_node.label)
        if edge.direction is cy.Direction.IN:
            if not backward_ok:
                raise TranspileError(
                    f"edge {edge.label!r} cannot run from {right_node.label!r} "
                    f"to {left_node.label!r}"
                )
            return orient(right_alias, right_node.label, left_alias, left_node.label)
        # Undirected: admit every orientation the edge type allows.
        options: list[sq.Predicate] = []
        if forward_ok:
            options.append(orient(left_alias, left_node.label, right_alias, right_node.label))
        if backward_ok:
            options.append(orient(right_alias, right_node.label, left_alias, left_node.label))
        if not options:
            raise TranspileError(
                f"edge {edge.label!r} cannot connect {left_node.label!r} "
                f"and {right_node.label!r} in either direction"
            )
        if len(options) == 1:
            return options[0]
        return sq.Or(options[0], options[1])

    # -- variable-length patterns (PT-Reach) ----------------------------------

    def _reach_query(
        self,
        edge: cy.VarLengthEdgePattern,
        left_node: cy.NodePattern,
        right_node: cy.NodePattern,
    ) -> sq.Query:
        """The reach relation of one variable-length edge occurrence.

        Output: distinct ``(src, tgt)`` primary-key pairs connected by a
        walk of ``min_hops..max_hops`` hops, oriented along the pattern
        (``src`` is always the *left* endpoint).  Shape::

            WITH hop AS (oriented one-hop pairs of the edge table)
            WITH RECURSIVE reach(src, tgt, depth) AS (
                SELECT src, tgt, 1 FROM hop
                UNION  -- distinct: the cycle-safety device
                SELECT r.src, e.tgt, r.depth + Δ FROM reach r JOIN hop e
                ON e.src = r.tgt [AND r.depth < max]
            )
            SELECT DISTINCT src, tgt FROM reach [WHERE depth >= min]

        With an open upper bound the increment Δ is ``Cast(depth < cap)``
        — depth saturates at ``cap = max(min_hops, 1)`` so the distinct
        union closes over a finite state space even on cyclic data.
        ``min_hops = 0`` unions the node table's identity pairs around the
        fixpoint (and skips it entirely for ``*0..0``).
        """
        from repro.cypher.analysis import var_length_step_error

        problem = var_length_step_error(edge=edge, left=left_node, right=right_node, schema=self.graph_schema)
        if problem is not None:
            raise TranspileError(problem)
        edge_type = self.graph_schema.edge_type(edge.label)
        edge_table = self.sdt.table_for(edge.label)
        node_table = self.sdt.table_for(edge_type.source)
        pk = self._primary_key_of(edge_type.source)
        lo, hi = edge.min_hops, edge.max_hops

        identity = sq.Projection(
            sq.Relation(node_table),
            (
                sq.OutputColumn(REACH_SOURCE, sq.AttributeRef(pk)),
                sq.OutputColumn(REACH_TARGET, sq.AttributeRef(pk)),
            ),
        )
        if hi == 0:
            return identity  # ``*0..0`` — only the zero-length walk

        core = self._recursive_reach(edge, edge_table, max(lo, 1), hi)
        if lo == 0:
            return sq.UnionOp(identity, core, all=False)
        return core

    def _hop_pairs(self, edge: cy.VarLengthEdgePattern, edge_table: str) -> sq.Query:
        """Oriented one-hop ``(src, tgt)`` pairs: the traversal's step relation."""

        def oriented(source_attribute: str, target_attribute: str) -> sq.Query:
            return sq.Projection(
                sq.Relation(edge_table),
                (
                    sq.OutputColumn(REACH_SOURCE, sq.AttributeRef(source_attribute)),
                    sq.OutputColumn(REACH_TARGET, sq.AttributeRef(target_attribute)),
                ),
            )

        if edge.direction is cy.Direction.OUT:
            return oriented(SOURCE_ATTRIBUTE, TARGET_ATTRIBUTE)
        if edge.direction is cy.Direction.IN:
            return oriented(TARGET_ATTRIBUTE, SOURCE_ATTRIBUTE)
        return sq.UnionOp(
            oriented(SOURCE_ATTRIBUTE, TARGET_ATTRIBUTE),
            oriented(TARGET_ATTRIBUTE, SOURCE_ATTRIBUTE),
            all=True,
        )

    def _recursive_reach(
        self,
        edge: cy.VarLengthEdgePattern,
        edge_table: str,
        lo: int,
        hi: int | None,
    ) -> sq.Query:
        """The depth-tracked fixpoint over the hop relation (``lo >= 1``)."""
        hop_name = self._fresh_table("hop")
        name = self._fresh_table("reach")
        walker = self._fresh_table("R")
        stepper = self._fresh_table("E")
        depth_ref = sq.AttributeRef(f"{walker}.{REACH_DEPTH}")

        base = sq.Projection(
            sq.Relation(hop_name),
            (
                sq.OutputColumn(REACH_SOURCE, sq.AttributeRef(REACH_SOURCE)),
                sq.OutputColumn(REACH_TARGET, sq.AttributeRef(REACH_TARGET)),
                sq.OutputColumn(REACH_DEPTH, sq.Literal(1)),
            ),
        )

        join_predicate: sq.Predicate = sq.Comparison(
            "=",
            sq.AttributeRef(f"{stepper}.{REACH_SOURCE}"),
            sq.AttributeRef(f"{walker}.{REACH_TARGET}"),
        )
        if hi is not None:
            # Bounded: stop extending walks at the upper bound.
            join_predicate = sq.And(
                join_predicate, sq.Comparison("<", depth_ref, sq.Literal(hi))
            )
            increment: sq.Expression = sq.Literal(1)
        else:
            # Open: saturate the depth at ``lo`` — Cast(depth < lo) adds 1
            # below the cap and 0 at it, closing the state space.
            increment = sq.CastPredicate(
                sq.Comparison("<", depth_ref, sq.Literal(lo))
            )
        step = sq.Projection(
            sq.Join(
                sq.JoinKind.INNER,
                sq.Renaming(walker, sq.Relation(name)),
                sq.Renaming(stepper, sq.Relation(hop_name)),
                join_predicate,
            ),
            (
                sq.OutputColumn(REACH_SOURCE, sq.AttributeRef(f"{walker}.{REACH_SOURCE}")),
                sq.OutputColumn(REACH_TARGET, sq.AttributeRef(f"{stepper}.{REACH_TARGET}")),
                sq.OutputColumn(REACH_DEPTH, sq.BinaryOp("+", depth_ref, increment)),
            ),
        )

        qualifying: sq.Query = sq.Relation(name)
        if lo > 1:
            qualifying = sq.Selection(
                qualifying,
                sq.Comparison(">=", sq.AttributeRef(REACH_DEPTH), sq.Literal(lo)),
            )
        body = sq.Projection(
            qualifying,
            (
                sq.OutputColumn(REACH_SOURCE, sq.AttributeRef(REACH_SOURCE)),
                sq.OutputColumn(REACH_TARGET, sq.AttributeRef(REACH_TARGET)),
            ),
            distinct=True,
        )

        fanout = {
            cy.Direction.OUT: (SOURCE_ATTRIBUTE,),
            cy.Direction.IN: (TARGET_ATTRIBUTE,),
            cy.Direction.BOTH: (SOURCE_ATTRIBUTE, TARGET_ATTRIBUTE),
        }[edge.direction]
        fixpoint = sq.RecursiveQuery(
            name,
            (REACH_SOURCE, REACH_TARGET, REACH_DEPTH),
            base,
            step,
            body,
            union_all=False,
            reach=sq.ReachInfo(
                edge_table=edge_table,
                hop_relation=hop_name,
                fanout_columns=fanout,
                min_hops=edge.min_hops,
                max_hops=hi,
            ),
        )
        return sq.WithQuery(hop_name, self._hop_pairs(edge, edge_table), fixpoint)

    # -- expressions (Figure 21) ----------------------------------------------

    def _translate_expression(
        self, expression: cy.Expression, naming: Naming, variables: dict[str, str]
    ) -> sq.Expression:
        if isinstance(expression, cy.PropertyRef):
            self._check_property(expression, variables)
            return sq.AttributeRef(naming(expression.variable, expression.key))
        if isinstance(expression, cy.VariableRef):
            if expression.variable not in variables:
                raise TranspileError(f"unbound variable {expression.variable!r}")
            pk = self._primary_key_of(variables[expression.variable])
            return sq.AttributeRef(naming(expression.variable, pk))
        if isinstance(expression, cy.Literal):
            return sq.Literal(expression.value)
        if isinstance(expression, cy.Aggregate):
            if expression.argument is None:
                return sq.Aggregate("Count", None, expression.distinct)
            argument = self._translate_expression(expression.argument, naming, variables)
            return sq.Aggregate(expression.function, argument, expression.distinct)
        if isinstance(expression, cy.BinaryOp):
            return sq.BinaryOp(
                expression.op,
                self._translate_expression(expression.left, naming, variables),
                self._translate_expression(expression.right, naming, variables),
            )
        if isinstance(expression, cy.CastPredicate):
            return sq.CastPredicate(
                self._translate_predicate(expression.predicate, naming, variables)
            )
        raise TranspileError(
            f"cannot transpile expression node {type(expression).__name__}"
        )

    # -- predicates (Figure 22) -------------------------------------------------

    def _translate_predicate(
        self, predicate: cy.Predicate, naming: Naming, variables: dict[str, str]
    ) -> sq.Predicate:
        if isinstance(predicate, cy.BoolLit):
            return sq.BoolLit(predicate.value)
        if isinstance(predicate, cy.Comparison):
            return sq.Comparison(
                predicate.op,
                self._translate_expression(predicate.left, naming, variables),
                self._translate_expression(predicate.right, naming, variables),
            )
        if isinstance(predicate, cy.IsNull):
            return sq.IsNull(
                self._translate_expression(predicate.operand, naming, variables),
                predicate.negated,
            )
        if isinstance(predicate, cy.InValues):
            return sq.InValues(
                self._translate_expression(predicate.operand, naming, variables),
                predicate.values,
            )
        if isinstance(predicate, cy.Exists):
            return self._translate_exists(predicate, naming, variables)
        if isinstance(predicate, cy.And):
            return sq.And(
                self._translate_predicate(predicate.left, naming, variables),
                self._translate_predicate(predicate.right, naming, variables),
            )
        if isinstance(predicate, cy.Or):
            return sq.Or(
                self._translate_predicate(predicate.left, naming, variables),
                self._translate_predicate(predicate.right, naming, variables),
            )
        if isinstance(predicate, cy.Not):
            return sq.Not(self._translate_predicate(predicate.operand, naming, variables))
        raise TranspileError(
            f"cannot transpile predicate node {type(predicate).__name__}"
        )

    def _translate_exists(
        self, predicate: cy.Exists, naming: Naming, variables: dict[str, str]
    ) -> sq.Predicate:
        """P-Exists, generalised to correlate on all shared variables.

        When only the pattern's head/last node variables are shared with the
        enclosing clause this is exactly the paper's
        ``ā ∈ Π_ā(Q)`` with ``ā`` the endpoint primary keys.
        """
        inner = self._translate_pattern(predicate.pattern)
        inner_naming = self._flat_naming(inner.variables)
        inner_predicate = self._translate_predicate(
            predicate.predicate, inner_naming, inner.variables
        )
        subquery: sq.Query = (
            sq.Selection(inner.query, inner_predicate)
            if inner_predicate != sq.TRUE
            else inner.query
        )
        shared = sorted(set(inner.variables) & set(variables))
        if not shared:
            return sq.ExistsQuery(subquery)
        operands: list[sq.Expression] = []
        columns: list[sq.OutputColumn] = []
        for variable in shared:
            pk = self._primary_key_of(inner.variables[variable])
            operands.append(sq.AttributeRef(naming(variable, pk)))
            columns.append(
                sq.OutputColumn(flat(variable, pk), sq.AttributeRef(flat(variable, pk)))
            )
        projected = sq.Projection(subquery, tuple(columns))
        return sq.InQuery(tuple(operands), projected)

    # -- helpers -----------------------------------------------------------

    def _flat_naming(self, variables: dict[str, str]) -> Naming:
        def naming(variable: str, key: str) -> str:
            if variable not in variables:
                raise TranspileError(f"unbound variable {variable!r}")
            return flat(variable, key)

        return naming

    def _attributes_of(self, label: str) -> tuple[str, ...]:
        """Induced-table attributes of a node/edge label."""
        kind = self.graph_schema.type_of(label)
        if isinstance(kind, NodeType):
            return kind.keys
        assert isinstance(kind, EdgeType)
        return kind.keys + (SOURCE_ATTRIBUTE, TARGET_ATTRIBUTE)

    def _primary_key_of(self, label: str) -> str:
        """Default property key = induced-table primary key for *label*."""
        return self.graph_schema.type_of(label).default_key

    def _check_property(self, ref: cy.PropertyRef, variables: dict[str, str]) -> None:
        if ref.variable not in variables:
            raise TranspileError(f"unbound variable {ref.variable!r} in {ref}")
        label = variables[ref.variable]
        declared = self._attributes_of(label)
        if ref.key not in declared:
            raise TranspileError(
                f"{label!r} declares no property key {ref.key!r} (has {declared})"
            )

    def _fresh_table(self, stem: str) -> str:
        return f"{stem}{next(self._fresh)}"

    @staticmethod
    def _has_aggregate(expression: cy.Expression) -> bool:
        if isinstance(expression, cy.Aggregate):
            return True
        if isinstance(expression, cy.BinaryOp):
            return Transpiler._has_aggregate(expression.left) or Transpiler._has_aggregate(
                expression.right
            )
        return False


def _conjoin(predicates: list[sq.Predicate]) -> sq.Predicate:
    result: sq.Predicate = sq.TRUE
    for predicate in predicates:
        result = predicate if result == sq.TRUE else sq.And(result, predicate)
    return result


def transpile(query: cy.Query, graph_schema: GraphSchema, sdt: SdtResult) -> sq.Query:
    """``Transpile(Q_G, Φ_sdt, Ψ'_R)`` (Algorithm 1, line 3)."""
    return Transpiler(graph_schema, sdt).translate_query(query)
