"""``InferSDT`` — induced relational schema and standard database transformer
(paper Section 5.1, Figure 13).

For every node type ``(l, K1, ..., Kn)`` the induced schema contains a table
``R_l(K1, ..., Kn)`` with ``PK(R_l) = K1``; for every edge type
``(l, t_src, t_tgt, K1, ..., Km)`` a table ``R_l(K1, ..., Km, SRC, TGT)``
with ``PK(R_l) = K1`` and foreign keys ``SRC``/``TGT`` referencing the
endpoint tables' primary keys (paper Figure 6 shows exactly this shape).

Induced table names reuse the graph label verbatim — the rendering in the
paper's Figure 7 (``FROM Concept AS c1 JOIN CS AS r1 ...``) does the same.
The standard transformer's rules are then identity renamings
``l(K1, ..) → R_l(K1, ..)``, so the residual substitution of Algorithm 2 is
well-defined even when label and table names coincide.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import SchemaError
from repro.graph.schema import EdgeType, GraphSchema, NodeType
from repro.relational.schema import (
    ForeignKey,
    IntegrityConstraints,
    NotNull,
    PrimaryKey,
    Relation,
    RelationalSchema,
)
from repro.transformer.dsl import Predicate, Rule, Transformer, Variable

#: Attribute names the Edge rule appends for the endpoint foreign keys.
SOURCE_ATTRIBUTE = "SRC"
TARGET_ATTRIBUTE = "TGT"


@dataclass(frozen=True)
class SdtResult:
    """Output of ``InferSDT``: ``(Φ_sdt, Ψ'_R)`` plus name bookkeeping."""

    schema: RelationalSchema
    transformer: Transformer
    table_of_label: dict[str, str]

    def table_for(self, label: str) -> str:
        """Induced table name for a node/edge label."""
        try:
            return self.table_of_label[label]
        except KeyError:
            raise SchemaError(f"no induced table for label {label!r}") from None


def infer_sdt(graph_schema: GraphSchema) -> SdtResult:
    """``InferSDT(Ψ_G) = (Φ_sdt, Ψ'_R)`` (Algorithm 1, line 2)."""
    relations: list[Relation] = []
    primary_keys: list[PrimaryKey] = []
    foreign_keys: list[ForeignKey] = []
    not_nulls: list[NotNull] = []
    rules: list[Rule] = []
    table_of_label: dict[str, str] = {}

    for node_type in graph_schema.node_types:
        relation, constraints, rule = _node_rule(node_type)
        relations.append(relation)
        primary_keys.extend(constraints.primary_keys)
        not_nulls.extend(constraints.not_nulls)
        rules.append(rule)
        table_of_label[node_type.label] = relation.name

    for edge_type in graph_schema.edge_types:
        relation, constraints, rule = _edge_rule(edge_type, graph_schema)
        relations.append(relation)
        primary_keys.extend(constraints.primary_keys)
        foreign_keys.extend(constraints.foreign_keys)
        not_nulls.extend(constraints.not_nulls)
        rules.append(rule)
        table_of_label[edge_type.label] = relation.name

    schema = RelationalSchema(
        tuple(relations),
        IntegrityConstraints(
            tuple(primary_keys), tuple(foreign_keys), tuple(not_nulls)
        ),
    )
    return SdtResult(schema, Transformer.of(rules), table_of_label)


def _node_rule(node_type: NodeType) -> tuple[Relation, IntegrityConstraints, Rule]:
    """The ``Node`` rule of Figure 13."""
    table_name = node_type.label
    relation = Relation(table_name, node_type.keys)
    constraints = IntegrityConstraints(
        primary_keys=(PrimaryKey(table_name, node_type.default_key),),
        not_nulls=(NotNull(table_name, node_type.default_key),),
    )
    terms = tuple(Variable(key) for key in node_type.keys)
    rule = Rule((Predicate(node_type.label, terms),), Predicate(table_name, terms))
    return relation, constraints, rule


def _edge_rule(
    edge_type: EdgeType, graph_schema: GraphSchema
) -> tuple[Relation, IntegrityConstraints, Rule]:
    """The ``Edge`` rule of Figure 13."""
    table_name = edge_type.label
    for reserved in (SOURCE_ATTRIBUTE, TARGET_ATTRIBUTE):
        if reserved in edge_type.keys:
            raise SchemaError(
                f"edge type {edge_type.label!r} declares reserved key {reserved!r}"
            )
    attributes = edge_type.keys + (SOURCE_ATTRIBUTE, TARGET_ATTRIBUTE)
    relation = Relation(table_name, attributes)
    source_type = graph_schema.node_type(edge_type.source)
    target_type = graph_schema.node_type(edge_type.target)
    constraints = IntegrityConstraints(
        primary_keys=(PrimaryKey(table_name, edge_type.default_key),),
        foreign_keys=(
            ForeignKey(
                table_name, SOURCE_ATTRIBUTE, source_type.label, source_type.default_key
            ),
            ForeignKey(
                table_name, TARGET_ATTRIBUTE, target_type.label, target_type.default_key
            ),
        ),
        not_nulls=(
            NotNull(table_name, edge_type.default_key),
            NotNull(table_name, SOURCE_ATTRIBUTE),
            NotNull(table_name, TARGET_ATTRIBUTE),
        ),
    )
    variables = tuple(Variable(key) for key in edge_type.keys) + (
        Variable("fk_src"),
        Variable("fk_tgt"),
    )
    rule = Rule(
        (Predicate(edge_type.label, variables),),
        Predicate(table_name, variables),
    )
    return relation, constraints, rule
