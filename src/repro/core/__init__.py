"""The paper's primary contribution: SDT inference, transpilation, and the
end-to-end equivalence-checking pipeline (Algorithms 1 and 2)."""

from repro.core.sdt import SdtResult, infer_sdt
from repro.core.transpile import transpile
from repro.core.equivalence import CheckResult, Verdict, check_equivalence
from repro.core.counterexample import Counterexample, lift_counterexample

__all__ = [
    "SdtResult",
    "infer_sdt",
    "transpile",
    "CheckResult",
    "Verdict",
    "check_equivalence",
    "Counterexample",
    "lift_counterexample",
]
