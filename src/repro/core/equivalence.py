"""End-to-end equivalence checking (paper Algorithm 1).

``check_equivalence`` wires the pipeline together:

1. ``InferSDT``          — induced schema + standard transformer,
2. ``Transpile``         — correct-by-construction Cypher → SQL,
3. ``ReduceToSQL``       — residual transformer by substitution (Alg. 2),
4. ``CheckSQL``          — a pluggable backend decides SQL equivalence.

On refutation, the backend's induced-schema witness is lifted back to a
property graph (the SDT is a bijection), and both query results are attached
so callers can print a paper-style counterexample (Figures 3/4, 23).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.checkers.base import CheckOutcome, CheckRequest, Verdict
from repro.core.counterexample import Counterexample, lift_counterexample
from repro.core.sdt import SdtResult, infer_sdt
from repro.core.transpile import transpile
from repro.cypher import ast as cy
from repro.cypher.semantics import evaluate_query as evaluate_cypher
from repro.graph.schema import GraphSchema
from repro.relational.schema import RelationalSchema
from repro.sql import ast as sq
from repro.sql.semantics import evaluate_query as evaluate_sql
from repro.transformer.dsl import Transformer
from repro.transformer.residual import residual_transformer


@dataclass
class CheckResult:
    """Everything produced by one ``CheckEquivalence`` run."""

    verdict: Verdict
    outcome: CheckOutcome
    sdt: SdtResult
    transpiled: sq.Query
    residual: Transformer
    counterexample: Counterexample | None = None

    @property
    def refuted(self) -> bool:
        return self.verdict is Verdict.NOT_EQUIVALENT

    @property
    def verified(self) -> bool:
        return self.verdict in (Verdict.EQUIVALENT, Verdict.BOUNDED_EQUIVALENT)


def check_equivalence(
    graph_schema: GraphSchema,
    cypher_query: cy.Query,
    relational_schema: RelationalSchema,
    sql_query: sq.Query,
    transformer: Transformer,
    checker,
) -> CheckResult:
    """``CheckEquivalence(Ψ_G, Q_G, Ψ_R, Q_R, Φ)`` with backend *checker*."""
    sdt = infer_sdt(graph_schema)
    transpiled = transpile(cypher_query, graph_schema, sdt)
    residual = residual_transformer(transformer, sdt.transformer)
    request = CheckRequest(
        induced_schema=sdt.schema,
        induced_query=transpiled,
        target_schema=relational_schema,
        target_query=sql_query,
        residual=residual,
    )
    outcome = checker.check(request)
    counterexample = None
    if outcome.verdict is Verdict.NOT_EQUIVALENT and outcome.induced_witness is not None:
        graph = lift_counterexample(graph_schema, sdt, outcome.induced_witness)
        cypher_result = evaluate_cypher(cypher_query, graph)
        sql_result = evaluate_sql(sql_query, outcome.target_witness)
        counterexample = Counterexample(
            graph=graph,
            induced_database=outcome.induced_witness,
            target_database=outcome.target_witness,
            cypher_result=cypher_result,
            sql_result=sql_result,
            bound=outcome.checked_bound,
        )
    return CheckResult(
        verdict=outcome.verdict,
        outcome=outcome,
        sdt=sdt,
        transpiled=transpiled,
        residual=residual,
        counterexample=counterexample,
    )


