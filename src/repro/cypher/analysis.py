"""Static analysis over Featherweight Cypher ASTs.

``ast_size`` counts AST nodes (the metric of the paper's Table 1);
``collect_variables`` and ``has_aggregate`` support the transpiler and the
benchmark infrastructure; ``var_length_step_error`` is the shared semantic
check for variable-length relationship patterns (both the reference
evaluator and the transpiler consult it so they reject exactly the same
ill-typed traversals).
"""

from __future__ import annotations

from repro.cypher import ast
from repro.graph.schema import GraphSchema


def ast_size(node: object) -> int:
    """Number of AST nodes in a query/clause/pattern/expression/predicate."""
    if isinstance(node, ast.Return):
        return 1 + ast_size(node.clause) + sum(ast_size(e) for e in node.expressions)
    if isinstance(node, ast.OrderBy):
        return 1 + ast_size(node.query) + len(node.keys)
    if isinstance(node, (ast.Union, ast.UnionAll)):
        return 1 + ast_size(node.left) + ast_size(node.right)
    if isinstance(node, ast.Match):
        size = 1 + _pattern_size(node.pattern) + ast_size(node.predicate)
        if node.previous is not None:
            size += ast_size(node.previous)
        return size
    if isinstance(node, ast.OptMatch):
        return 1 + ast_size(node.previous) + _pattern_size(node.pattern) + ast_size(node.predicate)
    if isinstance(node, ast.With):
        return 1 + ast_size(node.previous) + len(node.old_names)
    if isinstance(node, ast.PropertyRef):
        return 2  # variable + key
    if isinstance(node, (ast.VariableRef, ast.Literal, ast.BoolLit)):
        return 1
    if isinstance(node, ast.Aggregate):
        return 1 + (ast_size(node.argument) if node.argument is not None else 0)
    if isinstance(node, ast.BinaryOp):
        return 1 + ast_size(node.left) + ast_size(node.right)
    if isinstance(node, ast.CastPredicate):
        return 1 + ast_size(node.predicate)
    if isinstance(node, ast.Comparison):
        return 1 + ast_size(node.left) + ast_size(node.right)
    if isinstance(node, ast.IsNull):
        return 1 + ast_size(node.operand)
    if isinstance(node, ast.InValues):
        return 1 + ast_size(node.operand) + len(node.values)
    if isinstance(node, ast.Exists):
        return 1 + _pattern_size(node.pattern) + ast_size(node.predicate)
    if isinstance(node, (ast.And, ast.Or)):
        return 1 + ast_size(node.left) + ast_size(node.right)
    if isinstance(node, ast.Not):
        return 1 + ast_size(node.operand)
    raise TypeError(f"not a Cypher AST node: {type(node).__name__}")


def _pattern_size(pattern: ast.PathPattern) -> int:
    """Pattern elements count at token granularity: a node pattern ``(X, l)``
    is three nodes (tuple, variable, label), an edge pattern ``(X, l, d)``
    four and a variable-length edge ``(X, l, d, lo..hi)`` six — matching how
    the paper's Table 1 sizes weigh pattern-heavy Cypher queries above their
    SQL counterparts."""
    size = 0
    for element in pattern:
        if isinstance(element, ast.NodePattern):
            size += 3
        elif isinstance(element, ast.VarLengthEdgePattern):
            size += 6
        else:
            size += 4
    return size


def pattern_bindable_variables(pattern: ast.PathPattern) -> dict[str, str]:
    """Variable → label for every *bindable* element of *pattern*.

    A variable-length edge variable names the whole traversal, not a graph
    element, so it never enters the binding scope (see
    :class:`~repro.cypher.ast.VarLengthEdgePattern`).
    """
    return {
        element.variable: element.label
        for element in pattern
        if not isinstance(element, ast.VarLengthEdgePattern)
    }


def collect_variables(clause: ast.Clause) -> dict[str, str]:
    """All variables in scope after *clause* (variable → label)."""
    if isinstance(clause, ast.Match):
        variables: dict[str, str] = {}
        if clause.previous is not None:
            variables.update(collect_variables(clause.previous))
        variables.update(pattern_bindable_variables(clause.pattern))
        return variables
    if isinstance(clause, ast.OptMatch):
        variables = collect_variables(clause.previous)
        variables.update(pattern_bindable_variables(clause.pattern))
        return variables
    if isinstance(clause, ast.With):
        inner = collect_variables(clause.previous)
        return {
            new: inner[old]
            for old, new in zip(clause.old_names, clause.new_names)
        }
    raise TypeError(f"not a Cypher clause: {type(clause).__name__}")


def has_aggregate(expression: ast.Expression) -> bool:
    """``hasAgg(E)`` from the translation rules."""
    if isinstance(expression, ast.Aggregate):
        return True
    if isinstance(expression, ast.BinaryOp):
        return has_aggregate(expression.left) or has_aggregate(expression.right)
    return False


def query_clause(query: ast.Query) -> ast.Clause:
    """The innermost clause of a (non-union) query."""
    if isinstance(query, ast.Return):
        return query.clause
    if isinstance(query, ast.OrderBy):
        return query_clause(query.query)
    raise TypeError("union queries have no single clause")


def uses_optional_match(query: ast.Query) -> bool:
    """Whether any clause in *query* is an OPTIONAL MATCH."""

    def clause_uses(clause: ast.Clause) -> bool:
        if isinstance(clause, ast.OptMatch):
            return True
        if isinstance(clause, ast.Match):
            return clause.previous is not None and clause_uses(clause.previous)
        if isinstance(clause, ast.With):
            return clause_uses(clause.previous)
        return False

    if isinstance(query, ast.Return):
        return clause_uses(query.clause)
    if isinstance(query, ast.OrderBy):
        return uses_optional_match(query.query)
    if isinstance(query, (ast.Union, ast.UnionAll)):
        return uses_optional_match(query.left) or uses_optional_match(query.right)
    return False


def uses_aggregation(query: ast.Query) -> bool:
    """Whether the query's RETURN list contains an aggregate."""
    if isinstance(query, ast.Return):
        return any(has_aggregate(e) for e in query.expressions)
    if isinstance(query, ast.OrderBy):
        return uses_aggregation(query.query)
    if isinstance(query, (ast.Union, ast.UnionAll)):
        return uses_aggregation(query.left) or uses_aggregation(query.right)
    return False


def uses_var_length(query: ast.Query) -> bool:
    """Whether any pattern of *query* contains a variable-length edge."""

    def pattern_uses(pattern: ast.PathPattern) -> bool:
        return any(isinstance(e, ast.VarLengthEdgePattern) for e in pattern)

    def predicate_uses(predicate: ast.Predicate) -> bool:
        if isinstance(predicate, ast.Exists):
            return pattern_uses(predicate.pattern) or predicate_uses(predicate.predicate)
        if isinstance(predicate, (ast.And, ast.Or)):
            return predicate_uses(predicate.left) or predicate_uses(predicate.right)
        if isinstance(predicate, ast.Not):
            return predicate_uses(predicate.operand)
        return False

    def clause_uses(clause: ast.Clause) -> bool:
        if isinstance(clause, ast.Match):
            return (
                pattern_uses(clause.pattern)
                or predicate_uses(clause.predicate)
                or (clause.previous is not None and clause_uses(clause.previous))
            )
        if isinstance(clause, ast.OptMatch):
            return (
                pattern_uses(clause.pattern)
                or predicate_uses(clause.predicate)
                or clause_uses(clause.previous)
            )
        if isinstance(clause, ast.With):
            return clause_uses(clause.previous)
        return False

    if isinstance(query, ast.Return):
        return clause_uses(query.clause)
    if isinstance(query, ast.OrderBy):
        return uses_var_length(query.query)
    if isinstance(query, (ast.Union, ast.UnionAll)):
        return uses_var_length(query.left) or uses_var_length(query.right)
    return False


def var_length_step_error(
    left: ast.NodePattern,
    edge: ast.VarLengthEdgePattern,
    right: ast.NodePattern,
    schema: GraphSchema,
) -> str | None:
    """Why the variable-length step is ill-typed, or ``None`` when fine.

    Multi-hop traversal only typechecks over a *self-referential* edge type
    (every intermediate node carries the same label), and both endpoint
    patterns must carry that node label.  The reference evaluator and the
    transpiler both enforce this, so a query is rejected identically on
    either path.
    """
    edge_type = schema.edge_type(edge.label)
    if edge_type.source != edge_type.target:
        return (
            f"variable-length pattern over {edge.label!r} needs a self-referential "
            f"edge type; {edge.label!r} runs {edge_type.source!r} -> {edge_type.target!r}"
        )
    for node in (left, right):
        if node.label != edge_type.source:
            return (
                f"variable-length pattern endpoint {node.variable!r} is labelled "
                f"{node.label!r}, but {edge.label!r} connects {edge_type.source!r} nodes"
            )
    return None
