"""Static analysis over Featherweight Cypher ASTs.

``ast_size`` counts AST nodes (the metric of the paper's Table 1);
``collect_variables`` and ``has_aggregate`` support the transpiler and the
benchmark infrastructure.
"""

from __future__ import annotations

from repro.cypher import ast


def ast_size(node: object) -> int:
    """Number of AST nodes in a query/clause/pattern/expression/predicate."""
    if isinstance(node, ast.Return):
        return 1 + ast_size(node.clause) + sum(ast_size(e) for e in node.expressions)
    if isinstance(node, ast.OrderBy):
        return 1 + ast_size(node.query) + len(node.keys)
    if isinstance(node, (ast.Union, ast.UnionAll)):
        return 1 + ast_size(node.left) + ast_size(node.right)
    if isinstance(node, ast.Match):
        size = 1 + _pattern_size(node.pattern) + ast_size(node.predicate)
        if node.previous is not None:
            size += ast_size(node.previous)
        return size
    if isinstance(node, ast.OptMatch):
        return 1 + ast_size(node.previous) + _pattern_size(node.pattern) + ast_size(node.predicate)
    if isinstance(node, ast.With):
        return 1 + ast_size(node.previous) + len(node.old_names)
    if isinstance(node, ast.PropertyRef):
        return 2  # variable + key
    if isinstance(node, (ast.VariableRef, ast.Literal, ast.BoolLit)):
        return 1
    if isinstance(node, ast.Aggregate):
        return 1 + (ast_size(node.argument) if node.argument is not None else 0)
    if isinstance(node, ast.BinaryOp):
        return 1 + ast_size(node.left) + ast_size(node.right)
    if isinstance(node, ast.CastPredicate):
        return 1 + ast_size(node.predicate)
    if isinstance(node, ast.Comparison):
        return 1 + ast_size(node.left) + ast_size(node.right)
    if isinstance(node, ast.IsNull):
        return 1 + ast_size(node.operand)
    if isinstance(node, ast.InValues):
        return 1 + ast_size(node.operand) + len(node.values)
    if isinstance(node, ast.Exists):
        return 1 + _pattern_size(node.pattern) + ast_size(node.predicate)
    if isinstance(node, (ast.And, ast.Or)):
        return 1 + ast_size(node.left) + ast_size(node.right)
    if isinstance(node, ast.Not):
        return 1 + ast_size(node.operand)
    raise TypeError(f"not a Cypher AST node: {type(node).__name__}")


def _pattern_size(pattern: ast.PathPattern) -> int:
    """Pattern elements count at token granularity: a node pattern ``(X, l)``
    is three nodes (tuple, variable, label), an edge pattern ``(X, l, d)``
    four — matching how the paper's Table 1 sizes weigh pattern-heavy
    Cypher queries above their SQL counterparts."""
    size = 0
    for element in pattern:
        size += 3 if isinstance(element, ast.NodePattern) else 4
    return size


def collect_variables(clause: ast.Clause) -> dict[str, str]:
    """All variables in scope after *clause* (variable → label)."""
    if isinstance(clause, ast.Match):
        variables: dict[str, str] = {}
        if clause.previous is not None:
            variables.update(collect_variables(clause.previous))
        variables.update({e.variable: e.label for e in clause.pattern})
        return variables
    if isinstance(clause, ast.OptMatch):
        variables = collect_variables(clause.previous)
        variables.update({e.variable: e.label for e in clause.pattern})
        return variables
    if isinstance(clause, ast.With):
        inner = collect_variables(clause.previous)
        return {
            new: inner[old]
            for old, new in zip(clause.old_names, clause.new_names)
        }
    raise TypeError(f"not a Cypher clause: {type(clause).__name__}")


def has_aggregate(expression: ast.Expression) -> bool:
    """``hasAgg(E)`` from the translation rules."""
    if isinstance(expression, ast.Aggregate):
        return True
    if isinstance(expression, ast.BinaryOp):
        return has_aggregate(expression.left) or has_aggregate(expression.right)
    return False


def query_clause(query: ast.Query) -> ast.Clause:
    """The innermost clause of a (non-union) query."""
    if isinstance(query, ast.Return):
        return query.clause
    if isinstance(query, ast.OrderBy):
        return query_clause(query.query)
    raise TypeError("union queries have no single clause")


def uses_optional_match(query: ast.Query) -> bool:
    """Whether any clause in *query* is an OPTIONAL MATCH."""

    def clause_uses(clause: ast.Clause) -> bool:
        if isinstance(clause, ast.OptMatch):
            return True
        if isinstance(clause, ast.Match):
            return clause.previous is not None and clause_uses(clause.previous)
        if isinstance(clause, ast.With):
            return clause_uses(clause.previous)
        return False

    if isinstance(query, ast.Return):
        return clause_uses(query.clause)
    if isinstance(query, ast.OrderBy):
        return uses_optional_match(query.query)
    if isinstance(query, (ast.Union, ast.UnionAll)):
        return uses_optional_match(query.left) or uses_optional_match(query.right)
    return False


def uses_aggregation(query: ast.Query) -> bool:
    """Whether the query's RETURN list contains an aggregate."""
    if isinstance(query, ast.Return):
        return any(has_aggregate(e) for e in query.expressions)
    if isinstance(query, ast.OrderBy):
        return uses_aggregation(query.query)
    if isinstance(query, (ast.Union, ast.UnionAll)):
        return uses_aggregation(query.left) or uses_aggregation(query.right)
    return False
