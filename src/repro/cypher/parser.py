"""Recursive-descent parser for the Featherweight Cypher surface syntax.

Accepted shape (case-insensitive keywords)::

    MATCH (c1:CONCEPT {CID: 1})-[r1:CS]->(p1:PA)-[r2:SP]->(s:SENTENCE)
    WITH s
    MATCH (s:SENTENCE)<-[r3:SP]-(p2:PA)<-[r4:CS]-(c2:CONCEPT)
    RETURN c2.CID, Count(*)

Sugar handled by the parser (desugared into the Figure-9 core):

* inline property maps ``{CID: 1}`` become equality conjuncts in ``WHERE``;
* comma-separated patterns in one ``MATCH`` become nested ``Match`` clauses;
* anonymous node/edge variables receive fresh names ``_a1, _a2, ...``;
* node patterns without labels are inferred from adjacent edge types when a
  graph schema is supplied (the paper's Appendix C example needs this);
* ``EXISTS { MATCH ... }`` and ``EXISTS(...)`` both parse to ``Exists``.
"""

from __future__ import annotations

from itertools import count

from repro.common.errors import ParseError
from repro.common.values import NULL, Value
from repro.cypher import ast
from repro.cypher.lexer import Token, TokenStream, number_value, string_value, tokenize
from repro.graph.schema import GraphSchema

_AGGREGATES = {"COUNT": "Count", "SUM": "Sum", "AVG": "Avg", "MIN": "Min", "MAX": "Max"}

_KEYWORDS = {
    "MATCH", "OPTIONAL", "WHERE", "WITH", "AS", "RETURN", "DISTINCT",
    "ORDER", "BY", "ASC", "DESC", "LIMIT", "UNION", "ALL", "AND", "OR",
    "NOT", "IN", "IS", "NULL", "TRUE", "FALSE", "EXISTS",
}


def parse_cypher(source: str, schema: GraphSchema | None = None) -> ast.Query:
    """Parse Cypher text into a Featherweight Cypher AST."""
    stream = TokenStream(tokenize(source))
    parser = _Parser(stream, schema)
    query = parser.parse_query()
    if not stream.at_end():
        raise stream.error(f"unexpected trailing input {stream.peek().text!r}")
    return query


class _Parser:
    def __init__(self, stream: TokenStream, schema: GraphSchema | None) -> None:
        self.stream = stream
        self.schema = schema
        self._anon = count(1)

    # -- queries -----------------------------------------------------------

    def parse_query(self) -> ast.Query:
        query: ast.Query = self._parse_statement()
        while self.stream.take_keyword("UNION"):
            bag = self.stream.take_keyword("ALL")
            right = self._parse_statement()
            query = ast.UnionAll(query, right) if bag else ast.Union(query, right)
        return query

    def _parse_statement(self) -> ast.Query:
        clause = self._parse_clauses()
        returned = self._parse_return(clause)
        if self.stream.take_keyword("ORDER"):
            self.stream.expect_keyword("BY")
            keys, ascending = self._parse_order_items(returned)
            limit = None
            if self.stream.take_keyword("LIMIT"):
                limit = int(number_value(self._expect_number()))
            return ast.OrderBy(returned, keys, ascending, limit)
        if self.stream.take_keyword("LIMIT"):
            limit = int(number_value(self._expect_number()))
            return ast.OrderBy(returned, (), (), limit)
        return returned

    def _expect_number(self) -> Token:
        token = self.stream.peek()
        if token.kind != "number":
            raise self.stream.error("expected a number")
        return self.stream.advance()

    def _parse_order_items(self, returned: ast.Return) -> tuple[tuple[str, ...], tuple[bool, ...]]:
        keys: list[str] = []
        ascending: list[bool] = []
        while True:
            key = self._resolve_order_key(returned)
            direction = True
            if self.stream.take_keyword("DESC"):
                direction = False
            else:
                self.stream.take_keyword("ASC")
            keys.append(key)
            ascending.append(direction)
            if not self.stream.take_op(","):
                break
        return tuple(keys), tuple(ascending)

    def _resolve_order_key(self, returned: ast.Return) -> str:
        """An ORDER BY item must name an output column (alias or expression)."""
        token = self.stream.peek()
        if (
            token.kind == "ident"
            and token.text.upper() not in _KEYWORDS
            and token.text.upper() not in _AGGREGATES
            and not self.stream.peek(1).is_op(".")
        ):
            self.stream.advance()
            if token.text in returned.names:
                return token.text
            raise self.stream.error(
                f"ORDER BY key {token.text!r} does not name a RETURN column"
            )
        expression = self._parse_expression(allow_aggregates=True)
        from repro.cypher.pretty import _expression as render

        rendered = render(expression)
        if isinstance(expression, ast.PropertyRef):
            bare = f"{expression.variable}.{expression.key}"
            for name in returned.names:
                if name in (bare, expression.key):
                    return name
        for expr, name in zip(returned.expressions, returned.names):
            if render(expr) == rendered:
                return name
        if rendered in returned.names:
            return rendered
        raise self.stream.error(
            f"ORDER BY key {rendered!r} does not name a RETURN column"
        )

    # -- clauses -----------------------------------------------------------

    def _parse_clauses(self) -> ast.Clause:
        clause: ast.Clause | None = None
        while True:
            if self.stream.take_keyword("MATCH"):
                clause = self._parse_match(clause, optional=False)
            elif self.stream.at_keyword("OPTIONAL"):
                self.stream.advance()
                self.stream.expect_keyword("MATCH")
                if clause is None:
                    raise self.stream.error("OPTIONAL MATCH cannot open a query")
                clause = self._parse_match(clause, optional=True)
            elif self.stream.at_keyword("WITH"):
                self.stream.advance()
                if clause is None:
                    raise self.stream.error("WITH cannot open a query")
                clause = self._parse_with(clause)
            else:
                break
        if clause is None:
            raise self.stream.error("expected MATCH")
        return clause

    def _parse_match(self, previous: ast.Clause | None, optional: bool) -> ast.Clause:
        patterns: list[tuple[ast.PathPattern, ast.Predicate]] = []
        while True:
            pattern, inline = self._parse_path_pattern()
            patterns.append((pattern, inline))
            if not self.stream.take_op(","):
                break
        where: ast.Predicate = ast.TRUE
        if self.stream.take_keyword("WHERE"):
            where = self._parse_predicate()
        clause = previous
        for index, (pattern, inline) in enumerate(patterns):
            last = index == len(patterns) - 1
            predicate = _conjoin(inline, where if last else ast.TRUE)
            if optional:
                if clause is None:  # pragma: no cover - guarded by caller
                    raise self.stream.error("OPTIONAL MATCH cannot open a query")
                clause = ast.OptMatch(clause, pattern, predicate)
            elif clause is None:
                clause = ast.Match(pattern, predicate)
            else:
                clause = ast.Match(pattern, predicate, previous=clause)
        assert clause is not None
        return clause

    def _parse_with(self, previous: ast.Clause) -> ast.Clause:
        old_names: list[str] = []
        new_names: list[str] = []
        while True:
            token = self.stream.expect_ident("variable in WITH")
            if token.text.upper() in _KEYWORDS or self.stream.at_op("."):
                raise self.stream.error(
                    "featherweight WITH carries only bare variables "
                    "(expressions in WITH are outside the supported fragment)"
                )
            old = token.text
            new = old
            if self.stream.take_keyword("AS"):
                new = self.stream.expect_ident("new variable name").text
            old_names.append(old)
            new_names.append(new)
            if not self.stream.take_op(","):
                break
        return ast.With(previous, tuple(old_names), tuple(new_names))

    # -- patterns ----------------------------------------------------------

    def _parse_path_pattern(self) -> tuple[ast.PathPattern, ast.Predicate]:
        elements: list[ast.NodePattern | ast.EdgePattern] = []
        constraints: list[ast.Predicate] = []
        node, node_constraints = self._parse_node_pattern()
        elements.append(node)
        constraints.extend(node_constraints)
        while self.stream.at_op("-", "<"):
            edge = self._parse_edge_pattern()
            next_node, node_constraints = self._parse_node_pattern()
            elements.append(edge)
            elements.append(next_node)
            constraints.extend(node_constraints)
        resolved = self._infer_labels(elements)
        # Inline constraints were parsed before inference; rebuild them now
        # that every node variable has a label.
        return ast.path_pattern(*resolved), _conjoin_all(constraints)

    def _parse_node_pattern(self) -> tuple[ast.NodePattern, list[ast.Predicate]]:
        self.stream.expect_op("(")
        variable = None
        label = ""
        if self.stream.peek().kind == "ident" and not self.stream.at_op(":"):
            variable = self.stream.advance().text
        if self.stream.take_op(":"):
            label = self.stream.expect_ident("node label").text
        if variable is None:
            variable = f"_a{next(self._anon)}"
        constraints = self._parse_property_map(variable)
        self.stream.expect_op(")")
        return ast.NodePattern(variable, label), constraints

    def _parse_edge_pattern(self) -> ast.EdgePattern | ast.VarLengthEdgePattern:
        incoming = False
        if self.stream.take_op("<"):
            incoming = True
        self.stream.expect_op("-")
        variable = None
        label = ""
        hops: tuple[int, int | None] | None = None
        if self.stream.take_op("["):
            if self.stream.peek().kind == "ident" and not self.stream.at_op(":"):
                variable = self.stream.advance().text
            if self.stream.take_op(":"):
                label = self.stream.expect_ident("edge label").text
            if self.stream.take_op("*"):
                hops = self._parse_hop_bounds()
            self.stream.expect_op("]")
        self.stream.expect_op("-")
        outgoing = self.stream.take_op(">")
        if incoming and outgoing:
            raise self.stream.error("edge pattern cannot point both ways")
        if variable is None:
            variable = f"_a{next(self._anon)}"
        if incoming:
            direction = ast.Direction.IN
        elif outgoing:
            direction = ast.Direction.OUT
        else:
            direction = ast.Direction.BOTH
        if hops is not None:
            return ast.VarLengthEdgePattern(variable, label, direction, *hops)
        return ast.EdgePattern(variable, label, direction)

    def _parse_hop_bounds(self) -> tuple[int, int | None]:
        """The bounds after ``*``: ``*`` | ``*n`` | ``*lo..hi`` | ``*lo..`` | ``*..hi``."""
        min_hops = 1
        max_hops: int | None = None
        saw_lower = False
        if self.stream.peek().kind == "number":
            min_hops = self._expect_hop_count()
            saw_lower = True
        if self.stream.take_op(".."):
            if self.stream.peek().kind == "number":
                max_hops = self._expect_hop_count()
        elif saw_lower:
            max_hops = min_hops  # ``*n`` — exactly n hops
        if max_hops is not None and max_hops < min_hops:
            raise self.stream.error(
                f"variable-length bounds are inverted: *{min_hops}..{max_hops}"
            )
        return min_hops, max_hops

    def _expect_hop_count(self) -> int:
        token = self._expect_number()
        value = number_value(token)
        if not isinstance(value, int):
            raise self.stream.error(f"hop bound must be an integer, got {token.text}")
        return value

    def _parse_property_map(self, variable: str) -> list[ast.Predicate]:
        constraints: list[ast.Predicate] = []
        if not self.stream.take_op("{"):
            return constraints
        while True:
            key = self.stream.expect_ident("property key").text
            self.stream.expect_op(":")
            value = self._parse_literal_value()
            constraints.append(
                ast.Comparison("=", ast.PropertyRef(variable, key), ast.Literal(value))
            )
            if not self.stream.take_op(","):
                break
        self.stream.expect_op("}")
        return constraints

    def _parse_literal_value(self) -> Value:
        token = self.stream.peek()
        if token.kind == "number":
            self.stream.advance()
            return number_value(token)
        if token.kind == "string":
            self.stream.advance()
            return string_value(token)
        if token.is_keyword("TRUE"):
            self.stream.advance()
            return True
        if token.is_keyword("FALSE"):
            self.stream.advance()
            return False
        if token.is_keyword("NULL"):
            self.stream.advance()
            return NULL
        if token.is_op("-"):
            self.stream.advance()
            number = self._expect_number()
            return -number_value(number)
        raise self.stream.error(f"expected a literal, found {token.text!r}")

    def _infer_labels(
        self, elements: list[ast.NodePattern | ast.EdgePattern]
    ) -> list[ast.NodePattern | ast.EdgePattern]:
        """Fill in missing node/edge labels from the schema when possible."""
        resolved = list(elements)
        changed = True
        while changed:
            changed = False
            for index, element in enumerate(resolved):
                if element.label:
                    continue
                if isinstance(element, ast.NodePattern):
                    label = self._infer_node_label(resolved, index)
                else:
                    label = self._infer_edge_label(resolved, index)
                if label:
                    if isinstance(element, ast.NodePattern):
                        resolved[index] = ast.NodePattern(element.variable, label)
                    elif isinstance(element, ast.VarLengthEdgePattern):
                        resolved[index] = ast.VarLengthEdgePattern(
                            element.variable,
                            label,
                            element.direction,
                            element.min_hops,
                            element.max_hops,
                        )
                    else:
                        resolved[index] = ast.EdgePattern(
                            element.variable, label, element.direction
                        )
                    changed = True
        for element in resolved:
            if not element.label:
                raise self.stream.error(
                    f"cannot infer a label for pattern variable {element.variable!r}; "
                    "annotate it or provide a schema"
                )
        return resolved

    def _infer_node_label(
        self, elements: list[ast.NodePattern | ast.EdgePattern], index: int
    ) -> str:
        if self.schema is None:
            return ""
        # Same variable labelled elsewhere in the pattern?
        variable = elements[index].variable
        for other in elements:
            if (
                isinstance(other, ast.NodePattern)
                and other.variable == variable
                and other.label
            ):
                return other.label
        for edge_index in (index - 1, index + 1):
            if not 0 <= edge_index < len(elements):
                continue
            edge = elements[edge_index]
            if not isinstance(edge, ast.EdgePattern) or not edge.label:
                continue
            edge_type = self.schema.edge_type(edge.label)
            left_of_edge = edge_index == index + 1
            if edge.direction is ast.Direction.OUT:
                return edge_type.source if left_of_edge else edge_type.target
            if edge.direction is ast.Direction.IN:
                return edge_type.target if left_of_edge else edge_type.source
        return ""

    def _infer_edge_label(
        self, elements: list[ast.NodePattern | ast.EdgePattern], index: int
    ) -> str:
        if self.schema is None:
            return ""
        left = elements[index - 1]
        right = elements[index + 1]
        if not (isinstance(left, ast.NodePattern) and isinstance(right, ast.NodePattern)):
            return ""
        if not left.label or not right.label:
            return ""
        edge = elements[index]
        assert isinstance(edge, (ast.EdgePattern, ast.VarLengthEdgePattern))
        if edge.direction is ast.Direction.OUT:
            candidates = list(self.schema.edges_between(left.label, right.label))
        elif edge.direction is ast.Direction.IN:
            candidates = list(self.schema.edges_between(right.label, left.label))
        else:
            candidates = list(self.schema.edges_between(left.label, right.label))
            candidates += [
                e
                for e in self.schema.edges_between(right.label, left.label)
                if e not in candidates
            ]
        if len(candidates) == 1:
            return candidates[0].label
        return ""

    # -- RETURN ---------------------------------------------------------------

    def _parse_return(self, clause: ast.Clause) -> ast.Return:
        self.stream.expect_keyword("RETURN")
        distinct = self.stream.take_keyword("DISTINCT")
        expressions: list[ast.Expression] = []
        names: list[str] = []
        from repro.cypher.pretty import _expression as render

        while True:
            expression = self._parse_expression(allow_aggregates=True)
            name = render(expression)
            if self.stream.take_keyword("AS"):
                name = self.stream.expect_ident("output name").text
            expressions.append(expression)
            names.append(name)
            if not self.stream.take_op(","):
                break
        return ast.Return(clause, tuple(expressions), tuple(names), distinct)

    # -- predicates --------------------------------------------------------

    def _parse_predicate(self) -> ast.Predicate:
        return self._parse_or()

    def _parse_or(self) -> ast.Predicate:
        left = self._parse_and()
        while self.stream.take_keyword("OR"):
            left = ast.Or(left, self._parse_and())
        return left

    def _parse_and(self) -> ast.Predicate:
        left = self._parse_not()
        while self.stream.take_keyword("AND"):
            left = ast.And(left, self._parse_not())
        return left

    def _parse_not(self) -> ast.Predicate:
        if self.stream.take_keyword("NOT"):
            return ast.Not(self._parse_not())
        return self._parse_atom_predicate()

    def _parse_atom_predicate(self) -> ast.Predicate:
        if self.stream.at_keyword("EXISTS"):
            return self._parse_exists()
        if self.stream.at_keyword("TRUE"):
            self.stream.advance()
            return ast.TRUE
        if self.stream.at_keyword("FALSE"):
            self.stream.advance()
            return ast.FALSE
        if self.stream.at_op("(") and self._parenthesised_predicate_ahead():
            self.stream.expect_op("(")
            inner = self._parse_predicate()
            self.stream.expect_op(")")
            return inner
        left = self._parse_expression(allow_aggregates=False)
        return self._parse_predicate_tail(left)

    def _parse_predicate_tail(self, left: ast.Expression) -> ast.Predicate:
        token = self.stream.peek()
        if token.is_op("=", "<>", "!=", "<", "<=", ">", ">="):
            self.stream.advance()
            op = "<>" if token.text == "!=" else token.text
            right = self._parse_expression(allow_aggregates=False)
            return ast.Comparison(op, left, right)
        if token.is_keyword("IS"):
            self.stream.advance()
            negated = self.stream.take_keyword("NOT")
            self.stream.expect_keyword("NULL")
            return ast.IsNull(left, negated)
        if token.is_keyword("IN"):
            self.stream.advance()
            return ast.InValues(left, self._parse_value_list())
        if token.is_keyword("NOT"):
            self.stream.advance()
            self.stream.expect_keyword("IN")
            return ast.Not(ast.InValues(left, self._parse_value_list()))
        raise self.stream.error("expected a comparison, IS NULL, or IN")

    def _parse_value_list(self) -> tuple[Value, ...]:
        open_bracket = self.stream.take_op("[")
        if not open_bracket:
            self.stream.expect_op("(")
        values = [self._parse_literal_value()]
        while self.stream.take_op(","):
            values.append(self._parse_literal_value())
        self.stream.expect_op("]" if open_bracket else ")")
        return tuple(values)

    def _parse_exists(self) -> ast.Predicate:
        self.stream.expect_keyword("EXISTS")
        if self.stream.take_op("{"):
            self.stream.take_keyword("MATCH")
            pattern, inline = self._parse_path_pattern()
            predicate: ast.Predicate = inline
            if self.stream.take_keyword("WHERE"):
                predicate = _conjoin(predicate, self._parse_predicate())
            self.stream.expect_op("}")
            return ast.Exists(pattern, predicate)
        self.stream.expect_op("(")
        pattern, inline = self._parse_path_pattern()
        self.stream.expect_op(")")
        return ast.Exists(pattern, inline)

    def _parenthesised_predicate_ahead(self) -> bool:
        """Disambiguate ``(a.x + 1) > 2`` from ``(NOT p OR q)``.

        Scan ahead for a boolean keyword before the matching close paren at
        depth 1; comparisons inside also mark it as a predicate.
        """
        depth = 0
        offset = 0
        while True:
            token = self.stream.peek(offset)
            if token.kind == "eof":
                return False
            if token.is_op("("):
                depth += 1
            elif token.is_op(")"):
                depth -= 1
                if depth == 0:
                    return False
            elif depth == 1 and (
                token.is_keyword("AND", "OR", "NOT", "IN", "IS", "EXISTS")
                or token.is_op("=", "<>", "!=", "<", "<=", ">", ">=")
            ):
                return True
            offset += 1

    # -- expressions ---------------------------------------------------------

    def _parse_expression(self, allow_aggregates: bool) -> ast.Expression:
        return self._parse_additive(allow_aggregates)

    def _parse_additive(self, allow_aggregates: bool) -> ast.Expression:
        left = self._parse_multiplicative(allow_aggregates)
        while self.stream.at_op("+", "-"):
            op = self.stream.advance().text
            right = self._parse_multiplicative(allow_aggregates)
            left = ast.BinaryOp(op, left, right)
        return left

    def _parse_multiplicative(self, allow_aggregates: bool) -> ast.Expression:
        left = self._parse_unary(allow_aggregates)
        while self.stream.at_op("*", "/", "%"):
            op = self.stream.advance().text
            right = self._parse_unary(allow_aggregates)
            left = ast.BinaryOp(op, left, right)
        return left

    def _parse_unary(self, allow_aggregates: bool) -> ast.Expression:
        if self.stream.at_op("-"):
            self.stream.advance()
            operand = self._parse_unary(allow_aggregates)
            if isinstance(operand, ast.Literal) and isinstance(operand.value, (int, float)):
                return ast.Literal(-operand.value)
            return ast.BinaryOp("-", ast.Literal(0), operand)
        return self._parse_primary(allow_aggregates)

    def _parse_primary(self, allow_aggregates: bool) -> ast.Expression:
        token = self.stream.peek()
        if token.kind == "number":
            self.stream.advance()
            return ast.Literal(number_value(token))
        if token.kind == "string":
            self.stream.advance()
            return ast.Literal(string_value(token))
        if token.is_keyword("NULL"):
            self.stream.advance()
            return ast.Literal(NULL)
        if token.is_keyword("TRUE"):
            self.stream.advance()
            return ast.Literal(True)
        if token.is_keyword("FALSE"):
            self.stream.advance()
            return ast.Literal(False)
        if token.kind == "ident" and token.text.upper() in _AGGREGATES:
            return self._parse_aggregate(allow_aggregates)
        if token.kind == "ident":
            self.stream.advance()
            if self.stream.take_op("."):
                key = self.stream.expect_ident("property key").text
                return ast.PropertyRef(token.text, key)
            raise self.stream.error(
                f"bare variable {token.text!r} in expression position; "
                "reference a property like {token.text}.key"
            )
        if token.is_op("("):
            self.stream.advance()
            inner = self._parse_expression(allow_aggregates)
            self.stream.expect_op(")")
            return inner
        raise self.stream.error(f"expected an expression, found {token.text!r}")

    def _parse_aggregate(self, allow_aggregates: bool) -> ast.Expression:
        token = self.stream.advance()
        function = _AGGREGATES[token.text.upper()]
        if not self.stream.at_op("("):
            raise self.stream.error(f"{token.text} must be called like a function")
        if not allow_aggregates:
            raise self.stream.error("aggregates are not allowed here")
        self.stream.expect_op("(")
        distinct = self.stream.take_keyword("DISTINCT")
        if self.stream.take_op("*"):
            self.stream.expect_op(")")
            return ast.Aggregate("Count", None, distinct)
        token = self.stream.peek()
        if (
            token.kind == "ident"
            and token.text.upper() not in _KEYWORDS
            and token.text.upper() not in _AGGREGATES
            and not self.stream.peek(1).is_op(".")
            and self.stream.peek(1).is_op(")")
        ):
            # ``Count(n)`` — a bare variable aggregates the element's
            # identity (its default property key), NULL for unmatched
            # optional bindings.
            self.stream.advance()
            self.stream.expect_op(")")
            if function != "Count":
                raise self.stream.error(
                    f"{function} needs a property expression argument"
                )
            return ast.Aggregate("Count", ast.VariableRef(token.text), distinct)
        argument = self._parse_expression(allow_aggregates=False)
        self.stream.expect_op(")")
        return ast.Aggregate(function, argument, distinct)


def _conjoin(left: ast.Predicate, right: ast.Predicate) -> ast.Predicate:
    if left == ast.TRUE:
        return right
    if right == ast.TRUE:
        return left
    return ast.And(left, right)


def _conjoin_all(predicates: list[ast.Predicate]) -> ast.Predicate:
    result: ast.Predicate = ast.TRUE
    for predicate in predicates:
        result = _conjoin(result, predicate)
    return result
