"""Featherweight Cypher abstract syntax (paper Figure 9).

The grammar::

    Query      Q  ::= R | OrderBy(R, k, b) | Union(Q, Q) | UnionAll(Q, Q)
    ReturnQ    R  ::= Return(C, E*, k*)
    Clause     C  ::= Match(PP, phi) | Match(C, PP, phi)
                    | OptMatch(C, PP, phi) | With(C, X*, X*)
    PathPatt   PP ::= NP | NP, EP, PP
    NodePatt   NP ::= (X, l)        EdgePatt EP ::= (X, l, d)
    Expression E  ::= k | v | Cast(phi) | Agg(E) | E (+) E
    Predicate phi ::= T | F | E (.) E | IsNull(E) | E in v* | Exists(PP)
                    | phi and phi | phi or phi | not phi

Design notes:

* Property references are *qualified*: ``m.dname`` is
  ``PropertyRef("m", "dname")``.  The paper writes bare keys ``k`` but its
  examples always qualify, and qualification is required once two variables
  share a label (``c1``/``c2`` in the motivating example).
* ``Count(*)`` is ``Aggregate("Count", None)``.
* Directions follow the paper's ``d ∈ {→, ←, ↔}`` as :class:`Direction`.

All nodes are frozen dataclasses so queries hash and compare structurally,
which the checkers and benchmark infrastructure rely on.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Union

from repro.common.values import Value

# ---------------------------------------------------------------------------
# Patterns
# ---------------------------------------------------------------------------


class Direction(enum.Enum):
    """Edge-pattern direction ``d ∈ {→, ←, ↔}``."""

    OUT = "->"
    IN = "<-"
    BOTH = "--"


@dataclass(frozen=True)
class NodePattern:
    """``(X, l)``: bind variable *variable* to nodes labelled *label*."""

    variable: str
    label: str


@dataclass(frozen=True)
class EdgePattern:
    """``(X, l, d)``: bind *variable* to edges labelled *label*."""

    variable: str
    label: str
    direction: Direction


@dataclass(frozen=True)
class VarLengthEdgePattern:
    """``(X, l, d, lo..hi)`` — a variable-length relationship pattern.

    Surface forms: ``-[r:REL*]->`` (1 or more hops), ``-[r:REL*n]->``
    (exactly *n*), ``-[r:REL*lo..hi]->``, ``-[r:REL*lo..]->`` (unbounded
    above), ``-[r:REL*..hi]->`` (*lo* defaults to 1).  ``max_hops is None``
    encodes an unbounded upper bound.

    Semantics are *reachability* (endpoint-distinct): the pattern binds one
    row per distinct ``(head, last)`` node pair connected by a walk whose
    hop count lies in ``[min_hops, max_hops]``.  The edge variable names
    the whole traversal and is **not** a bindable element — referencing it
    in expressions is a semantic error (a list-valued binding is outside
    the featherweight value domain).
    """

    variable: str
    label: str
    direction: Direction
    min_hops: int = 1
    max_hops: int | None = None

    def __post_init__(self) -> None:
        if self.min_hops < 0:
            raise ValueError(f"variable-length pattern needs min_hops >= 0, got {self.min_hops}")
        if self.max_hops is not None and self.max_hops < self.min_hops:
            raise ValueError(
                f"variable-length pattern bounds are inverted: "
                f"*{self.min_hops}..{self.max_hops}"
            )

    @property
    def hops_text(self) -> str:
        """The surface spelling of the hop bounds (``*``, ``*2``, ``*1..3``, ...)."""
        if self.min_hops == 1 and self.max_hops is None:
            return "*"
        if self.max_hops is None:
            return f"*{self.min_hops}.."
        if self.max_hops == self.min_hops:
            return f"*{self.min_hops}"
        return f"*{self.min_hops}..{self.max_hops}"


#: Alternating node/edge pattern chain of odd length:
#: ``(NP,)`` or ``(NP, EP, NP, EP, NP, ...)``.
PathPattern = tuple[Union[NodePattern, EdgePattern, VarLengthEdgePattern], ...]

#: Either edge-pattern kind (the odd positions of a path pattern).
AnyEdgePattern = Union[EdgePattern, VarLengthEdgePattern]


def path_pattern(*elements: NodePattern | EdgePattern | VarLengthEdgePattern) -> PathPattern:
    """Validate and build a path pattern from alternating node/edge patterns."""
    if not elements or len(elements) % 2 == 0:
        raise ValueError("path pattern must alternate nodes and edges, ending on a node")
    for index, element in enumerate(elements):
        if index % 2 == 0:
            if not isinstance(element, NodePattern):
                raise ValueError(
                    f"path pattern element {index} should be NodePattern, "
                    f"got {type(element).__name__}"
                )
        elif not isinstance(element, (EdgePattern, VarLengthEdgePattern)):
            raise ValueError(
                f"path pattern element {index} should be an edge pattern, "
                f"got {type(element).__name__}"
            )
    return tuple(elements)


def pattern_nodes(pattern: PathPattern) -> tuple[NodePattern, ...]:
    """The node patterns of *pattern* in order."""
    return tuple(p for p in pattern if isinstance(p, NodePattern))


def pattern_edges(pattern: PathPattern) -> tuple["AnyEdgePattern", ...]:
    """The edge patterns of *pattern* in order (fixed- and variable-length)."""
    return tuple(
        p for p in pattern if isinstance(p, (EdgePattern, VarLengthEdgePattern))
    )


def pattern_head(pattern: PathPattern) -> NodePattern:
    """``head(PP)`` — the first node pattern."""
    return pattern[0]  # type: ignore[return-value]


def pattern_last(pattern: PathPattern) -> NodePattern:
    """``last(PP)`` — the final node pattern."""
    return pattern[-1]  # type: ignore[return-value]


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PropertyRef:
    """``X.k`` — the value of property key *key* on the element bound to *variable*."""

    variable: str
    key: str

    def __str__(self) -> str:
        return f"{self.variable}.{self.key}"


@dataclass(frozen=True)
class VariableRef:
    """``X`` — a bare variable, e.g. in ``Count(n)``.

    Evaluates to the element's default-property-key value (NULL when the
    variable is an unmatched optional binding), which is how the paper's
    Example 3.4 reads ``Count(n)`` as ``Count(n.id)``.
    """

    variable: str

    def __str__(self) -> str:
        return self.variable


@dataclass(frozen=True)
class Literal:
    """A constant value ``v``."""

    value: Value

    def __str__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class Aggregate:
    """``Agg(E)`` with ``Agg ∈ {Count, Avg, Sum, Min, Max}``.

    ``argument is None`` encodes ``Count(*)``.
    ``distinct`` covers Cypher's ``Count(DISTINCT e)`` used by tutorials.
    """

    function: str
    argument: "Expression | None"
    distinct: bool = False

    VALID = ("Count", "Avg", "Sum", "Min", "Max")

    def __post_init__(self) -> None:
        if self.function not in self.VALID:
            raise ValueError(f"unknown aggregate {self.function!r}")
        if self.argument is None and self.function != "Count":
            raise ValueError(f"{self.function}(*) is not well-formed")

    def __str__(self) -> str:
        inner = "*" if self.argument is None else str(self.argument)
        if self.distinct:
            inner = f"DISTINCT {inner}"
        return f"{self.function}({inner})"


@dataclass(frozen=True)
class BinaryOp:
    """Arithmetic ``E ⊕ E`` with ``⊕ ∈ {+, -, *, /, %}``."""

    op: str
    left: "Expression"
    right: "Expression"

    VALID = ("+", "-", "*", "/", "%")

    def __post_init__(self) -> None:
        if self.op not in self.VALID:
            raise ValueError(f"unknown arithmetic operator {self.op!r}")

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class CastPredicate:
    """``Cast(φ)``: coerce a predicate to 1 / 0 / NULL."""

    predicate: "Predicate"

    def __str__(self) -> str:
        return f"Cast({self.predicate})"


Expression = Union[PropertyRef, VariableRef, Literal, Aggregate, BinaryOp, CastPredicate]


# ---------------------------------------------------------------------------
# Predicates
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class BoolLit:
    """``⊤`` or ``⊥``."""

    value: bool

    def __str__(self) -> str:
        return "TRUE" if self.value else "FALSE"


TRUE = BoolLit(True)
FALSE = BoolLit(False)


@dataclass(frozen=True)
class Comparison:
    """``E ⊙ E`` with ``⊙ ∈ {=, <>, <, <=, >, >=}``."""

    op: str
    left: Expression
    right: Expression

    VALID = ("=", "<>", "<", "<=", ">", ">=")

    def __post_init__(self) -> None:
        if self.op not in self.VALID:
            raise ValueError(f"unknown comparison operator {self.op!r}")

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


@dataclass(frozen=True)
class IsNull:
    """``IsNull(E)``."""

    operand: Expression
    negated: bool = False

    def __str__(self) -> str:
        suffix = "IS NOT NULL" if self.negated else "IS NULL"
        return f"{self.operand} {suffix}"


@dataclass(frozen=True)
class InValues:
    """``E ∈ v̄`` — membership in a literal list."""

    operand: Expression
    values: tuple[Value, ...]

    def __str__(self) -> str:
        return f"{self.operand} IN {list(self.values)!r}"


@dataclass(frozen=True)
class Exists:
    """``Exists(PP)`` — some match of the pattern (satisfying *predicate*)
    agrees with the current binding on shared variables (paper rule
    P-Exists; the optional predicate captures inline property constraints
    such as ``{CID: 1}``)."""

    pattern: PathPattern
    predicate: "Predicate" = TRUE

    def __str__(self) -> str:
        return f"EXISTS({_pattern_str(self.pattern)} WHERE {self.predicate})"


@dataclass(frozen=True)
class And:
    left: "Predicate"
    right: "Predicate"

    def __str__(self) -> str:
        return f"({self.left} AND {self.right})"


@dataclass(frozen=True)
class Or:
    left: "Predicate"
    right: "Predicate"

    def __str__(self) -> str:
        return f"({self.left} OR {self.right})"


@dataclass(frozen=True)
class Not:
    operand: "Predicate"

    def __str__(self) -> str:
        return f"(NOT {self.operand})"


Predicate = Union[BoolLit, Comparison, IsNull, InValues, Exists, And, Or, Not]


# ---------------------------------------------------------------------------
# Clauses
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Match:
    """``Match(PP, φ)`` or ``Match(C, PP, φ)`` when *previous* is set."""

    pattern: PathPattern
    predicate: Predicate = TRUE
    previous: "Clause | None" = None

    def __str__(self) -> str:
        base = f"MATCH {_pattern_str(self.pattern)} WHERE {self.predicate}"
        return f"{self.previous}\n{base}" if self.previous else base


@dataclass(frozen=True)
class OptMatch:
    """``OptMatch(C, PP, φ)`` — OPTIONAL MATCH extending a previous clause."""

    previous: "Clause"
    pattern: PathPattern
    predicate: Predicate = TRUE

    def __str__(self) -> str:
        return f"{self.previous}\nOPTIONAL MATCH {_pattern_str(self.pattern)} WHERE {self.predicate}"


@dataclass(frozen=True)
class With:
    """``With(C, X̄, Ȳ)`` — keep only the listed variables, renamed old→new."""

    previous: "Clause"
    old_names: tuple[str, ...]
    new_names: tuple[str, ...]

    def __post_init__(self) -> None:
        if len(self.old_names) != len(self.new_names):
            raise ValueError("With clause needs matching old/new name lists")

    def __str__(self) -> str:
        items = ", ".join(
            old if old == new else f"{old} AS {new}"
            for old, new in zip(self.old_names, self.new_names)
        )
        return f"{self.previous}\nWITH {items}"


Clause = Union[Match, OptMatch, With]


# ---------------------------------------------------------------------------
# Queries
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Return:
    """``Return(C, Ē, k̄)`` — shape matched subgraphs into a table."""

    clause: Clause
    expressions: tuple[Expression, ...]
    names: tuple[str, ...]
    distinct: bool = False

    def __post_init__(self) -> None:
        if len(self.expressions) != len(self.names):
            raise ValueError("Return needs one output name per expression")
        if not self.expressions:
            raise ValueError("Return needs at least one expression")

    def __str__(self) -> str:
        items = ", ".join(
            f"{expr} AS {name}" for expr, name in zip(self.expressions, self.names)
        )
        keyword = "RETURN DISTINCT" if self.distinct else "RETURN"
        return f"{self.clause}\n{keyword} {items}"


@dataclass(frozen=True)
class OrderBy:
    """``OrderBy(R, k̄, b̄)`` — sort the rows of a return query."""

    query: "Query"
    keys: tuple[str, ...]
    ascending: tuple[bool, ...]
    limit: int | None = None

    def __post_init__(self) -> None:
        if len(self.keys) != len(self.ascending):
            raise ValueError("OrderBy needs one direction per key")

    def __str__(self) -> str:
        items = ", ".join(
            f"{key} {'ASC' if asc else 'DESC'}"
            for key, asc in zip(self.keys, self.ascending)
        )
        text = f"{self.query}\nORDER BY {items}"
        if self.limit is not None:
            text += f" LIMIT {self.limit}"
        return text


@dataclass(frozen=True)
class Union:
    """``Union(Q, Q)`` — duplicate-eliminating union."""

    left: "Query"
    right: "Query"

    def __str__(self) -> str:
        return f"{self.left}\nUNION\n{self.right}"


@dataclass(frozen=True)
class UnionAll:
    """``UnionAll(Q, Q)`` — bag union."""

    left: "Query"
    right: "Query"

    def __str__(self) -> str:
        return f"{self.left}\nUNION ALL\n{self.right}"


import typing as _typing  # noqa: E402  (the class `Union` shadows typing.Union above)

Query = _typing.Union[Return, OrderBy, Union, UnionAll]


def pattern_text(pattern: PathPattern) -> str:
    """Render a path pattern in surface syntax, e.g. ``(n:EMP)-[e:WORK_AT]->(m:DEPT)``.

    The single rendering used by both the ``__str__`` forms here and the
    pretty-printer (:func:`repro.cypher.pretty.pattern_text` delegates).
    """
    chunks: list[str] = []
    for element in pattern:
        if isinstance(element, NodePattern):
            chunks.append(f"({element.variable}:{element.label})")
        else:
            hops = element.hops_text if isinstance(element, VarLengthEdgePattern) else ""
            body = f"[{element.variable}:{element.label}{hops}]"
            arrow = {
                Direction.OUT: f"-{body}->",
                Direction.IN: f"<-{body}-",
                Direction.BOTH: f"-{body}-",
            }[element.direction]
            chunks.append(arrow)
    return "".join(chunks)


_pattern_str = pattern_text
