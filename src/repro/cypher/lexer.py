"""Tokenizer shared by the Cypher and SQL surface parsers.

Both languages in the supported fragments use the same lexical alphabet:
identifiers, numbers, single-quoted strings, punctuation, and a handful of
multi-character operators.  Keywords are recognised case-insensitively at
parse time (the lexer only produces ``IDENT`` tokens and leaves keyword
classification to the parsers).
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.common.errors import ParseError

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>//[^\n]*|--[^\n]*)
  | (?P<number>\d+(?:\.\d+)?)
  | (?P<string>'(?:[^'\\]|\\.)*'|"(?:[^"\\]|\\.)*")
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<op><=|>=|<>|!=|<|>|=|\+|-|\*|/|%|\(|\)|\[|\]|\{|\}|,|:|\.\.|\.|;)
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class Token:
    kind: str  # "number" | "string" | "ident" | "op" | "eof"
    text: str
    line: int
    column: int

    def is_keyword(self, *words: str) -> bool:
        return self.kind == "ident" and self.text.upper() in words

    def is_op(self, *ops: str) -> bool:
        return self.kind == "op" and self.text in ops


def tokenize(source: str) -> list[Token]:
    """Split *source* into tokens, raising :class:`ParseError` on junk."""
    tokens: list[Token] = []
    line = 1
    line_start = 0
    position = 0
    while position < len(source):
        match = _TOKEN_RE.match(source, position)
        if match is None:
            raise ParseError(
                f"unexpected character {source[position]!r}",
                line=line,
                column=position - line_start + 1,
            )
        text = match.group(0)
        kind = match.lastgroup or "op"
        if kind not in ("ws", "comment"):
            tokens.append(Token(kind, text, line, position - line_start + 1))
        newlines = text.count("\n")
        if newlines:
            line += newlines
            line_start = position + text.rfind("\n") + 1
        position = match.end()
    tokens.append(Token("eof", "", line, position - line_start + 1))
    return tokens


class TokenStream:
    """Cursor over a token list with the usual peek/expect helpers."""

    def __init__(self, tokens: list[Token]) -> None:
        self.tokens = tokens
        self.position = 0

    def peek(self, offset: int = 0) -> Token:
        index = min(self.position + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        token = self.peek()
        if token.kind != "eof":
            self.position += 1
        return token

    def at_keyword(self, *words: str) -> bool:
        return self.peek().is_keyword(*words)

    def take_keyword(self, *words: str) -> bool:
        if self.at_keyword(*words):
            self.advance()
            return True
        return False

    def expect_keyword(self, word: str) -> Token:
        token = self.peek()
        if not token.is_keyword(word):
            raise ParseError(
                f"expected {word}, found {token.text or 'end of input'!r}",
                line=token.line,
                column=token.column,
            )
        return self.advance()

    def at_op(self, *ops: str) -> bool:
        return self.peek().is_op(*ops)

    def take_op(self, *ops: str) -> bool:
        if self.at_op(*ops):
            self.advance()
            return True
        return False

    def expect_op(self, op: str) -> Token:
        token = self.peek()
        if not token.is_op(op):
            raise ParseError(
                f"expected {op!r}, found {token.text or 'end of input'!r}",
                line=token.line,
                column=token.column,
            )
        return self.advance()

    def expect_ident(self, what: str = "identifier") -> Token:
        token = self.peek()
        if token.kind != "ident":
            raise ParseError(
                f"expected {what}, found {token.text or 'end of input'!r}",
                line=token.line,
                column=token.column,
            )
        return self.advance()

    def at_end(self) -> bool:
        return self.peek().kind == "eof" or self.peek().is_op(";")

    def error(self, message: str) -> ParseError:
        token = self.peek()
        return ParseError(message, line=token.line, column=token.column)


def string_value(token: Token) -> str:
    """Strip quotes and unescape a string token."""
    body = token.text[1:-1]
    return body.replace("\\'", "'").replace('\\"', '"').replace("\\\\", "\\")


def number_value(token: Token):
    """Convert a number token to int or float."""
    if "." in token.text:
        return float(token.text)
    return int(token.text)
