"""Reference semantics for Featherweight Cypher (paper Appendix A).

A query maps a property graph to a table.  Clauses produce lists of
*bindings* — finite maps from pattern variables to graph elements (or NULL
for unmatched optional parts).  A binding is the executable form of the
paper's "subgraph with variable-indexed property map": the paper's
``(N, E, P, T)`` subgraphs key their property map by ``(X, k)`` pairs, which
is exactly a variable binding.

Two places where this implementation resolves ambiguities in the paper's
formalization (both resolved in favour of the SQL translation, whose
soundness theorem fixes the intended meaning — and both matching Neo4j):

* ``OPTIONAL MATCH`` whose pattern shares no variable with the current
  binding produces a cross product with the pattern's matches (the SQL
  left-outer-join behaviour) rather than always nullifying.
* ``EXISTS`` correlates the pattern with the enclosing binding on **shared
  variables** (by element identity) rather than on a key-based lookup of the
  head/last node's default property key.  When only the head/last variables
  are shared this coincides with rule P-Exists.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common import arithmetic
from repro.common.aggregates import combine, count_rows
from repro.common.errors import SemanticsError
from repro.common.values import (
    NULL,
    Value,
    is_null,
    sort_key,
    sql_and,
    sql_not,
    sql_or,
    value_eq,
    value_lt,
)
from repro.cypher import ast
from repro.graph.instance import Edge, Node, PropertyGraph
from repro.relational.instance import Row, Table

Element = Node | Edge


@dataclass(frozen=True)
class Binding:
    """One match result: variable → element (or NULL), variable → label."""

    elements: tuple[tuple[str, Element | None], ...]
    labels: tuple[tuple[str, str], ...]

    @classmethod
    def of(cls, elements: dict[str, Element | None], labels: dict[str, str]) -> "Binding":
        return cls(tuple(sorted(elements.items(), key=lambda kv: kv[0])),
                   tuple(sorted(labels.items(), key=lambda kv: kv[0])))

    @property
    def element_map(self) -> dict[str, Element | None]:
        return dict(self.elements)

    @property
    def label_map(self) -> dict[str, str]:
        return dict(self.labels)

    def variables(self) -> set[str]:
        return {name for name, _ in self.elements}

    def get(self, variable: str) -> Element | None:
        for name, element in self.elements:
            if name == variable:
                return element
        raise SemanticsError(f"unbound pattern variable {variable!r}")

    def has(self, variable: str) -> bool:
        return any(name == variable for name, _ in self.elements)


def merge_bindings(left: Binding, right: Binding) -> Binding | None:
    """``merge(g1, g2)`` — union, or ``None`` if shared variables disagree.

    Agreement is element identity (uid); a NULL binding only agrees with
    another NULL binding of the same variable.
    """
    left_map = left.element_map
    merged_elements = dict(left_map)
    merged_labels = left.label_map
    for name, element in right.elements:
        if name in left_map:
            existing = left_map[name]
            if existing is None or element is None:
                if existing is not element:
                    return None
            elif existing.uid != element.uid:
                return None
        else:
            merged_elements[name] = element
    merged_labels.update(right.label_map)
    return Binding.of(merged_elements, merged_labels)


# ---------------------------------------------------------------------------
# Query evaluation
# ---------------------------------------------------------------------------


def evaluate_query(query: ast.Query, graph: PropertyGraph) -> Table:
    """``⟦Q⟧_G`` — evaluate a Featherweight Cypher query to a table."""
    if isinstance(query, ast.Return):
        return _eval_return(query, graph)
    if isinstance(query, ast.OrderBy):
        return _eval_order_by(query, graph)
    if isinstance(query, ast.Union):
        left = evaluate_query(query.left, graph)
        right = evaluate_query(query.right, graph)
        _check_union_arity(left, right)
        return Table(left.attributes, _dedup_rows(list(left.rows) + list(right.rows)))
    if isinstance(query, ast.UnionAll):
        left = evaluate_query(query.left, graph)
        right = evaluate_query(query.right, graph)
        _check_union_arity(left, right)
        return Table(left.attributes, list(left.rows) + list(right.rows))
    raise SemanticsError(f"cannot evaluate query node {type(query).__name__}")


def _check_union_arity(left: Table, right: Table) -> None:
    if len(left.attributes) != len(right.attributes):
        raise SemanticsError(
            f"union arity mismatch: {len(left.attributes)} vs {len(right.attributes)}"
        )


def _eval_return(query: ast.Return, graph: PropertyGraph) -> Table:
    bindings = evaluate_clause(query.clause, graph)
    attributes = tuple(query.names)
    if not any(_has_aggregate(e) for e in query.expressions):
        rows = [
            tuple(eval_expression(expr, graph, [binding]) for expr in query.expressions)
            for binding in bindings
        ]
    else:
        rows = _eval_aggregated_return(query, graph, bindings)
    if query.distinct:
        rows = _dedup_rows(rows)
    return Table(attributes, rows)


def _eval_aggregated_return(
    query: ast.Return, graph: PropertyGraph, bindings: list[Binding]
) -> list[Row]:
    """Grouping per Appendix A: group by the non-aggregate expressions."""
    grouping = [e for e in query.expressions if not _has_aggregate(e)]
    groups: dict[tuple, list[Binding]] = {}
    order: list[tuple] = []
    for binding in bindings:
        key = tuple(eval_expression(expr, graph, [binding]) for expr in grouping)
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(binding)
    rows: list[Row] = []
    for key in order:
        group = groups[key]
        rows.append(
            tuple(eval_expression(expr, graph, group) for expr in query.expressions)
        )
    return rows


def _eval_order_by(query: ast.OrderBy, graph: PropertyGraph) -> Table:
    inner = evaluate_query(query.query, graph)
    decorated = []
    for row in inner:
        keys = []
        for name, ascending in zip(query.keys, query.ascending):
            value = inner.value(row, name)
            keys.append(_directional_key(value, ascending))
        decorated.append((tuple(keys), row))
    decorated.sort(key=lambda pair: pair[0])
    rows = [row for _, row in decorated]
    if query.limit is not None:
        rows = rows[: query.limit]
    return Table(inner.attributes, rows, ordered=True)


class _Descending:
    __slots__ = ("key",)

    def __init__(self, key: tuple) -> None:
        self.key = key

    def __lt__(self, other: "_Descending") -> bool:
        return other.key < self.key

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Descending) and self.key == other.key


def _directional_key(value: Value, ascending: bool):
    key = sort_key(value)
    return key if ascending else _Descending(key)


def _dedup_rows(rows: list[Row]) -> list[Row]:
    seen: set[Row] = set()
    out: list[Row] = []
    for row in rows:
        if row not in seen:
            seen.add(row)
            out.append(row)
    return out


# ---------------------------------------------------------------------------
# Clause evaluation
# ---------------------------------------------------------------------------


def evaluate_clause(clause: ast.Clause, graph: PropertyGraph) -> list[Binding]:
    """``⟦C⟧_G`` — a clause maps the graph to a list of bindings."""
    if isinstance(clause, ast.Match):
        return _eval_match(clause, graph)
    if isinstance(clause, ast.OptMatch):
        return _eval_opt_match(clause, graph)
    if isinstance(clause, ast.With):
        return _eval_with(clause, graph)
    raise SemanticsError(f"cannot evaluate clause node {type(clause).__name__}")


def _eval_match(clause: ast.Match, graph: PropertyGraph) -> list[Binding]:
    pattern_matches = match_pattern(clause.pattern, graph)
    if clause.previous is None:
        candidates = pattern_matches
    else:
        previous = evaluate_clause(clause.previous, graph)
        candidates = []
        for left in previous:
            for right in pattern_matches:
                merged = merge_bindings(left, right)
                if merged is not None:
                    candidates.append(merged)
    return [
        binding
        for binding in candidates
        if eval_predicate(clause.predicate, graph, [binding]) is True
    ]


def _eval_opt_match(clause: ast.OptMatch, graph: PropertyGraph) -> list[Binding]:
    previous = evaluate_clause(clause.previous, graph)
    pattern_matches = match_pattern(clause.pattern, graph)
    pattern_vars = _pattern_variables(clause.pattern)
    results: list[Binding] = []
    for left in previous:
        matched: list[Binding] = []
        for right in pattern_matches:
            merged = merge_bindings(left, right)
            if merged is not None and eval_predicate(clause.predicate, graph, [merged]) is True:
                matched.append(merged)
        if matched:
            results.extend(matched)
        else:
            nullified_elements = left.element_map
            nullified_labels = left.label_map
            for variable, label in pattern_vars.items():
                if variable not in nullified_elements:
                    nullified_elements[variable] = None
                    nullified_labels[variable] = label
            results.append(Binding.of(nullified_elements, nullified_labels))
    return results


def _eval_with(clause: ast.With, graph: PropertyGraph) -> list[Binding]:
    previous = evaluate_clause(clause.previous, graph)
    results = []
    for binding in previous:
        elements: dict[str, Element | None] = {}
        labels: dict[str, str] = {}
        label_map = binding.label_map
        for old, new in zip(clause.old_names, clause.new_names):
            elements[new] = binding.get(old)
            labels[new] = label_map[old]
        results.append(Binding.of(elements, labels))
    return results


def _pattern_variables(pattern: ast.PathPattern) -> dict[str, str]:
    """Variable → label for every *bindable* pattern variable.

    Variable-length edge variables name a traversal, not an element, and
    never enter the binding (so OPTIONAL MATCH does not nullify them).
    """
    from repro.cypher.analysis import pattern_bindable_variables

    return pattern_bindable_variables(pattern)


# ---------------------------------------------------------------------------
# Pattern matching
# ---------------------------------------------------------------------------


def match_pattern(pattern: ast.PathPattern, graph: PropertyGraph) -> list[Binding]:
    """``⟦PP⟧_G`` — all bindings of the pattern's variables."""
    if len(pattern) == 1:
        node_pattern = pattern[0]
        assert isinstance(node_pattern, ast.NodePattern)
        return [
            Binding.of({node_pattern.variable: node}, {node_pattern.variable: node_pattern.label})
            for node in graph.nodes_with_label(node_pattern.label)
        ]
    first, edge, *rest = pattern
    assert isinstance(first, ast.NodePattern)
    assert isinstance(edge, (ast.EdgePattern, ast.VarLengthEdgePattern))
    tail = tuple(rest)
    tail_matches = match_pattern(tail, graph)
    connector = tail[0]
    assert isinstance(connector, ast.NodePattern)
    if isinstance(edge, ast.VarLengthEdgePattern):
        steps = _match_var_length(first, edge, connector, graph)
    else:
        steps = _match_step(first, edge, connector, graph)
    results: list[Binding] = []
    for tail_binding in tail_matches:
        for step in steps:
            merged = merge_bindings(step, tail_binding)
            if merged is not None:
                results.append(merged)
    return results


def _match_step(
    left: ast.NodePattern,
    edge: ast.EdgePattern,
    right: ast.NodePattern,
    graph: PropertyGraph,
) -> list[Binding]:
    """``Subgraphs(G, [NP1, EP, NP2])`` — single-edge matches."""
    results: list[Binding] = []
    for candidate in graph.edges_with_label(edge.label):
        source = graph.source_of(candidate)
        target = graph.target_of(candidate)
        orientations: list[tuple[Node, Node]] = []
        if edge.direction in (ast.Direction.OUT, ast.Direction.BOTH):
            orientations.append((source, target))
        if edge.direction in (ast.Direction.IN, ast.Direction.BOTH):
            orientations.append((target, source))
        for left_node, right_node in orientations:
            if left_node.label != left.label or right_node.label != right.label:
                continue
            binding = Binding.of(
                {
                    left.variable: left_node,
                    edge.variable: candidate,
                    right.variable: right_node,
                },
                {
                    left.variable: left.label,
                    edge.variable: edge.label,
                    right.variable: right.label,
                },
            )
            if binding not in results:
                results.append(binding)
    return results


def _match_var_length(
    left: ast.NodePattern,
    edge: ast.VarLengthEdgePattern,
    right: ast.NodePattern,
    graph: PropertyGraph,
) -> list[Binding]:
    """``Subgraphs(G, [NP1, EP*lo..hi, NP2])`` — reachability matches.

    One binding per distinct ``(left, right)`` node pair connected by a
    walk of ``lo..hi`` hops along *edge*'s label and direction.  The
    frontier expansion is cycle-safe: it explores BFS states ``(node,
    capped depth)`` — depth saturates at ``max(lo, 1)`` when the upper
    bound is open — so it terminates on any graph, cyclic or not.
    """
    from repro.cypher.analysis import var_length_step_error

    problem = var_length_step_error(left, edge, right, graph.schema)
    if problem is not None:
        raise SemanticsError(problem)
    adjacency: dict[int, list[int]] = {}
    for candidate in graph.edges_with_label(edge.label):
        if edge.direction in (ast.Direction.OUT, ast.Direction.BOTH):
            adjacency.setdefault(candidate.source_uid, []).append(candidate.target_uid)
        if edge.direction in (ast.Direction.IN, ast.Direction.BOTH):
            adjacency.setdefault(candidate.target_uid, []).append(candidate.source_uid)
    results: list[Binding] = []
    for start in graph.nodes_with_label(left.label):
        for uid in sorted(
            _reachable_uids(start.uid, adjacency, edge.min_hops, edge.max_hops)
        ):
            target = graph.node_by_uid(uid)
            if left.variable == right.variable:
                if target.uid != start.uid:
                    continue
                elements: dict[str, Element | None] = {left.variable: start}
                labels = {left.variable: left.label}
            else:
                elements = {left.variable: start, right.variable: target}
                labels = {left.variable: left.label, right.variable: right.label}
            results.append(Binding.of(elements, labels))
    return results


def _reachable_uids(
    start: int, adjacency: dict[int, list[int]], lo: int, hi: int | None
) -> set[int]:
    """Node uids connected to *start* by a walk of ``lo..hi`` hops."""
    qualified: set[int] = set()
    if lo == 0:
        qualified.add(start)
    if hi == 0:
        return qualified
    cap = max(lo, 1)  # saturation point for an open upper bound
    seen = {(start, 0)}
    frontier = [(start, 0)]
    while frontier:
        next_frontier: list[tuple[int, int]] = []
        for uid, depth in frontier:
            if hi is not None and depth >= hi:
                continue
            if hi is None:
                new_depth = depth + 1 if depth < cap else cap
            else:
                new_depth = depth + 1
            for successor in adjacency.get(uid, ()):
                state = (successor, new_depth)
                if state in seen:
                    continue
                seen.add(state)
                next_frontier.append(state)
                if new_depth >= lo:
                    qualified.add(successor)
        frontier = next_frontier
    return qualified


# ---------------------------------------------------------------------------
# Expression evaluation
# ---------------------------------------------------------------------------


def eval_expression(
    expression: ast.Expression, graph: PropertyGraph, group: list[Binding]
) -> Value:
    """``⟦E⟧_{G, gs}`` — evaluate over a group of bindings.

    Non-aggregate expressions read the head of the group (the paper
    guarantees singleton groups in non-aggregate position).
    """
    if isinstance(expression, ast.PropertyRef):
        element = group[0].get(expression.variable)
        if element is None:
            return NULL
        return element.value(expression.key)
    if isinstance(expression, ast.VariableRef):
        element = group[0].get(expression.variable)
        if element is None:
            return NULL
        default_key = graph.type_of(element).default_key
        return element.value(default_key)
    if isinstance(expression, ast.Literal):
        return expression.value
    if isinstance(expression, ast.Aggregate):
        return _eval_aggregate(expression, graph, group)
    if isinstance(expression, ast.BinaryOp):
        left = eval_expression(expression.left, graph, group)
        right = eval_expression(expression.right, graph, group)
        return arithmetic.apply_binary(expression.op, left, right)
    if isinstance(expression, ast.CastPredicate):
        verdict = eval_predicate(expression.predicate, graph, group)
        if is_null(verdict):
            return NULL
        return 1 if verdict else 0
    raise SemanticsError(f"cannot evaluate expression node {type(expression).__name__}")


def _eval_aggregate(
    aggregate: ast.Aggregate, graph: PropertyGraph, group: list[Binding]
) -> Value:
    if aggregate.argument is None:
        return count_rows(len(group))
    values = [
        eval_expression(aggregate.argument, graph, [binding]) for binding in group
    ]
    return combine(aggregate.function, values, aggregate.distinct)


def _has_aggregate(expression: ast.Expression) -> bool:
    if isinstance(expression, ast.Aggregate):
        return True
    if isinstance(expression, ast.BinaryOp):
        return _has_aggregate(expression.left) or _has_aggregate(expression.right)
    return False


# ---------------------------------------------------------------------------
# Predicate evaluation (3VL)
# ---------------------------------------------------------------------------


def eval_predicate(
    predicate: ast.Predicate, graph: PropertyGraph, group: list[Binding]
):
    """``⟦φ⟧_{G, gs}`` — three-valued predicate evaluation."""
    if isinstance(predicate, ast.BoolLit):
        return predicate.value
    if isinstance(predicate, ast.Comparison):
        left = eval_expression(predicate.left, graph, group)
        right = eval_expression(predicate.right, graph, group)
        return _compare(predicate.op, left, right)
    if isinstance(predicate, ast.IsNull):
        value = eval_expression(predicate.operand, graph, group)
        verdict = is_null(value)
        return (not verdict) if predicate.negated else verdict
    if isinstance(predicate, ast.InValues):
        operand = eval_expression(predicate.operand, graph, group)
        verdict = False
        for candidate in predicate.values:
            verdict = sql_or(verdict, value_eq(operand, candidate))
        return verdict
    if isinstance(predicate, ast.Exists):
        return _eval_exists(predicate, graph, group)
    if isinstance(predicate, ast.And):
        return sql_and(
            eval_predicate(predicate.left, graph, group),
            eval_predicate(predicate.right, graph, group),
        )
    if isinstance(predicate, ast.Or):
        return sql_or(
            eval_predicate(predicate.left, graph, group),
            eval_predicate(predicate.right, graph, group),
        )
    if isinstance(predicate, ast.Not):
        return sql_not(eval_predicate(predicate.operand, graph, group))
    raise SemanticsError(f"cannot evaluate predicate node {type(predicate).__name__}")


def _eval_exists(predicate: ast.Exists, graph: PropertyGraph, group: list[Binding]) -> bool:
    """``Exists(PP)``: some pattern match agrees with the current binding on
    every shared variable (by element identity)."""
    outer = group[0]
    shared = [
        element.variable
        for element in predicate.pattern
        if outer.has(element.variable)
    ]
    for match in match_pattern(predicate.pattern, graph):
        if eval_predicate(predicate.predicate, graph, [match]) is not True:
            continue
        agrees = True
        for variable in shared:
            outer_element = outer.get(variable)
            inner_element = match.get(variable)
            if outer_element is None or inner_element is None:
                agrees = outer_element is inner_element
            else:
                agrees = outer_element.uid == inner_element.uid
            if not agrees:
                break
        if agrees:
            return True
    return False


def _compare(op: str, left: Value, right: Value):
    if op == "=":
        return value_eq(left, right)
    if op == "<>":
        return sql_not(value_eq(left, right))
    if op == "<":
        return value_lt(left, right)
    if op == ">":
        return value_lt(right, left)
    if op == "<=":
        return sql_or(value_lt(left, right), value_eq(left, right))
    if op == ">=":
        return sql_or(value_lt(right, left), value_eq(left, right))
    raise SemanticsError(f"unknown comparison operator {op!r}")
