"""Featherweight Cypher: AST, parser, evaluator, analysis (paper Section 3.2)."""

from repro.cypher import ast
from repro.cypher.parser import parse_cypher
from repro.cypher.semantics import evaluate_query
from repro.cypher.analysis import (
    ast_size,
    collect_variables,
    has_aggregate,
    uses_var_length,
)
from repro.cypher.pretty import pretty as pretty_cypher

__all__ = [
    "ast",
    "parse_cypher",
    "evaluate_query",
    "ast_size",
    "collect_variables",
    "has_aggregate",
    "uses_var_length",
    "pretty_cypher",
]
