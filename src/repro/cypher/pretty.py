"""Pretty-printing Featherweight Cypher back to surface syntax.

The printer emits text the parser accepts, giving a round-trip property the
test suite checks: ``parse(pretty(q)) == q`` modulo anonymous-variable
naming.
"""

from __future__ import annotations

from repro.common.values import is_null
from repro.cypher import ast


def pretty(query: ast.Query) -> str:
    """Render a query as multi-line Cypher text."""
    if isinstance(query, ast.Return):
        return f"{_clause(query.clause)}\n{_return_line(query)}"
    if isinstance(query, ast.OrderBy):
        inner = pretty(query.query)
        items = ", ".join(
            f"{key}{'' if asc else ' DESC'}"
            for key, asc in zip(query.keys, query.ascending)
        )
        text = f"{inner}\nORDER BY {items}"
        if query.limit is not None:
            text += f"\nLIMIT {query.limit}"
        return text
    if isinstance(query, ast.Union):
        return f"{pretty(query.left)}\nUNION\n{pretty(query.right)}"
    if isinstance(query, ast.UnionAll):
        return f"{pretty(query.left)}\nUNION ALL\n{pretty(query.right)}"
    raise TypeError(f"not a Cypher query: {type(query).__name__}")


def _return_line(query: ast.Return) -> str:
    items = []
    for expr, name in zip(query.expressions, query.names):
        rendered = _expression(expr)
        if name != rendered:
            rendered = f"{rendered} AS {name}"
        items.append(rendered)
    keyword = "RETURN DISTINCT" if query.distinct else "RETURN"
    return f"{keyword} {', '.join(items)}"


def _clause(clause: ast.Clause) -> str:
    if isinstance(clause, ast.Match):
        line = f"MATCH {pattern_text(clause.pattern)}{_where(clause.predicate)}"
        if clause.previous is not None:
            return f"{_clause(clause.previous)}\n{line}"
        return line
    if isinstance(clause, ast.OptMatch):
        line = f"OPTIONAL MATCH {pattern_text(clause.pattern)}{_where(clause.predicate)}"
        return f"{_clause(clause.previous)}\n{line}"
    if isinstance(clause, ast.With):
        items = ", ".join(
            old if old == new else f"{old} AS {new}"
            for old, new in zip(clause.old_names, clause.new_names)
        )
        return f"{_clause(clause.previous)}\nWITH {items}"
    raise TypeError(f"not a Cypher clause: {type(clause).__name__}")


def _where(predicate: ast.Predicate) -> str:
    if predicate == ast.TRUE:
        return ""
    return f" WHERE {_predicate(predicate)}"


def pattern_text(pattern: ast.PathPattern) -> str:
    """Render a path pattern, e.g. ``(n:EMP)-[e:WORK_AT]->(m:DEPT)``."""
    return ast.pattern_text(pattern)


def _expression(expression: ast.Expression) -> str:
    if isinstance(expression, ast.PropertyRef):
        return f"{expression.variable}.{expression.key}"
    if isinstance(expression, ast.VariableRef):
        return expression.variable
    if isinstance(expression, ast.Literal):
        return _literal(expression.value)
    if isinstance(expression, ast.Aggregate):
        inner = "*" if expression.argument is None else _expression(expression.argument)
        if expression.distinct:
            inner = f"DISTINCT {inner}"
        return f"{expression.function}({inner})"
    if isinstance(expression, ast.BinaryOp):
        return f"({_expression(expression.left)} {expression.op} {_expression(expression.right)})"
    if isinstance(expression, ast.CastPredicate):
        return f"toInteger({_predicate(expression.predicate)})"
    raise TypeError(f"not a Cypher expression: {type(expression).__name__}")


def _literal(value) -> str:
    if is_null(value):
        return "NULL"
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, str):
        return f"'{value}'"
    return repr(value)


def _predicate(predicate: ast.Predicate) -> str:
    if isinstance(predicate, ast.BoolLit):
        return "TRUE" if predicate.value else "FALSE"
    if isinstance(predicate, ast.Comparison):
        return f"{_expression(predicate.left)} {predicate.op} {_expression(predicate.right)}"
    if isinstance(predicate, ast.IsNull):
        suffix = "IS NOT NULL" if predicate.negated else "IS NULL"
        return f"{_expression(predicate.operand)} {suffix}"
    if isinstance(predicate, ast.InValues):
        values = ", ".join(_literal(v) for v in predicate.values)
        return f"{_expression(predicate.operand)} IN [{values}]"
    if isinstance(predicate, ast.Exists):
        where = (
            f" WHERE {_predicate(predicate.predicate)}"
            if predicate.predicate != ast.TRUE
            else ""
        )
        return f"EXISTS {{ MATCH {pattern_text(predicate.pattern)}{where} }}"
    if isinstance(predicate, ast.And):
        return f"({_predicate(predicate.left)} AND {_predicate(predicate.right)})"
    if isinstance(predicate, ast.Or):
        return f"({_predicate(predicate.left)} OR {_predicate(predicate.right)})"
    if isinstance(predicate, ast.Not):
        return f"(NOT {_predicate(predicate.operand)})"
    raise TypeError(f"not a Cypher predicate: {type(predicate).__name__}")
