"""Textual surface syntax for relational schemas.

Used by the CLI::

    table emp(eid, ename, deptno)
    table dept(dno, dname)
    pk emp.eid
    pk dept.dno
    fk emp.deptno -> dept.dno
    notnull emp.deptno
"""

from __future__ import annotations

import re

from repro.common.errors import ParseError
from repro.relational.schema import (
    ForeignKey,
    IntegrityConstraints,
    NotNull,
    PrimaryKey,
    Relation,
    RelationalSchema,
)

_TABLE = re.compile(r"^table\s+(\w+)\s*\(([^)]*)\)\s*$", re.IGNORECASE)
_PK = re.compile(r"^pk\s+(\w+)\.(\w+)\s*$", re.IGNORECASE)
_FK = re.compile(r"^fk\s+(\w+)\.(\w+)\s*->\s*(\w+)\.(\w+)\s*$", re.IGNORECASE)
_NOT_NULL = re.compile(r"^notnull\s+(\w+)\.(\w+)\s*$", re.IGNORECASE)


def parse_relational_schema(text: str) -> RelationalSchema:
    """Parse a relational schema from its declaration syntax."""
    relations: list[Relation] = []
    primary_keys: list[PrimaryKey] = []
    foreign_keys: list[ForeignKey] = []
    not_nulls: list[NotNull] = []
    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.split("#")[0].split("--")[0].strip()
        if not line:
            continue
        table = _TABLE.match(line)
        if table:
            name, attributes = table.groups()
            parts = tuple(p.strip() for p in attributes.split(",") if p.strip())
            if not parts:
                raise ParseError("table needs attributes", line=line_number)
            relations.append(Relation(name, parts))
            continue
        pk = _PK.match(line)
        if pk:
            primary_keys.append(PrimaryKey(*pk.groups()))
            continue
        fk = _FK.match(line)
        if fk:
            foreign_keys.append(ForeignKey(*fk.groups()))
            continue
        not_null = _NOT_NULL.match(line)
        if not_null:
            not_nulls.append(NotNull(*not_null.groups()))
            continue
        raise ParseError(
            f"cannot parse schema declaration {line!r}", line=line_number
        )
    if not relations:
        raise ParseError("schema declares no tables")
    return RelationalSchema.of(
        relations,
        IntegrityConstraints(
            tuple(primary_keys), tuple(foreign_keys), tuple(not_nulls)
        ),
    )
