"""Relational database instances and table equivalence.

Tables are *bags* of rows over a fixed attribute list (Definition 3.6).
:func:`tables_equivalent` implements Definition 4.4: two tables are
equivalent iff some bijection between their columns makes their row bags
coincide.  A footnote in the paper refines this for ``ORDER BY`` results,
where row order matters — :func:`tables_equivalent_ordered`.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

from repro.common.errors import SchemaError
from repro.common.values import Value, is_null
from repro.relational.schema import RelationalSchema

#: One tuple of a relation: values aligned with the table's attribute list.
Row = tuple[Value, ...]


@dataclass
class Table:
    """A bag of rows with a fixed, ordered attribute list.

    ``ordered`` marks results of ``ORDER BY``, switching Definition 4.4's
    bag comparison to the footnote's list comparison.
    """

    attributes: tuple[str, ...]
    rows: list[Row] = field(default_factory=list)
    ordered: bool = False

    def __post_init__(self) -> None:
        if len(set(self.attributes)) != len(self.attributes):
            raise SchemaError(f"table has duplicate attributes: {self.attributes}")
        for row in self.rows:
            if len(row) != len(self.attributes):
                raise SchemaError(
                    f"row arity {len(row)} does not match attributes {self.attributes}"
                )

    @classmethod
    def of(
        cls,
        attributes: Sequence[str],
        rows: Iterable[Sequence[Value]] = (),
        ordered: bool = False,
    ) -> "Table":
        return cls(tuple(attributes), [tuple(row) for row in rows], ordered)

    # -- access ------------------------------------------------------------

    def column_index(self, attribute: str) -> int:
        try:
            return self.attributes.index(attribute)
        except ValueError:
            raise SchemaError(
                f"table has no attribute {attribute!r} (has {self.attributes})"
            ) from None

    def column(self, attribute: str) -> list[Value]:
        index = self.column_index(attribute)
        return [row[index] for row in self.rows]

    def value(self, row: Row, attribute: str) -> Value:
        """``r.a`` — the value stored at *attribute* of *row*."""
        return row[self.column_index(attribute)]

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows)

    def as_dicts(self) -> list[dict[str, Value]]:
        """Rows as attribute→value dictionaries (handy in tests)."""
        return [dict(zip(self.attributes, row)) for row in self.rows]

    def __str__(self) -> str:
        header = " | ".join(self.attributes)
        separator = "-" * len(header)
        body = "\n".join(" | ".join(repr(v) for v in row) for row in self.rows)
        return f"{header}\n{separator}\n{body}" if body else f"{header}\n{separator}\n(empty)"


class Database:
    """A relational database instance: relation name → :class:`Table`."""

    def __init__(self, schema: RelationalSchema, tables: dict[str, Table] | None = None) -> None:
        self.schema = schema
        self.tables: dict[str, Table] = {}
        for relation in schema.relations:
            self.tables[relation.name] = Table(relation.attributes)
        if tables:
            for name, table in tables.items():
                self.set_table(name, table)

    @classmethod
    def of(cls, schema: RelationalSchema, **rows: Iterable[Sequence[Value]]) -> "Database":
        """Build an instance giving each relation its rows by keyword."""
        database = cls(schema)
        for name, relation_rows in rows.items():
            for row in relation_rows:
                database.insert(name, row)
        return database

    def table(self, name: str) -> Table:
        try:
            return self.tables[name]
        except KeyError:
            raise SchemaError(f"database has no table {name!r}") from None

    def set_table(self, name: str, table: Table) -> None:
        relation = self.schema.relation(name)
        if table.attributes != relation.attributes:
            raise SchemaError(
                f"table attributes {table.attributes} do not match schema "
                f"relation {relation}"
            )
        self.tables[name] = table

    def insert(self, name: str, row: Sequence[Value]) -> None:
        relation = self.schema.relation(name)
        if len(row) != len(relation.attributes):
            raise SchemaError(
                f"row arity {len(row)} does not match relation {relation}"
            )
        self.tables[name].rows.append(tuple(row))

    # -- integrity ---------------------------------------------------------

    def satisfies_constraints(self) -> bool:
        """Whether the instance satisfies every constraint in ``ξ``."""
        return self.constraint_violation() is None

    def constraint_violation(self) -> str | None:
        """Describe the first violated integrity constraint, or ``None``."""
        constraints = self.schema.constraints
        for pk in constraints.primary_keys:
            table = self.table(pk.relation)
            seen: set[Value] = set()
            for row in table:
                value = table.value(row, pk.attribute)
                if is_null(value):
                    return f"{pk}: NULL key value"
                if value in seen:
                    return f"{pk}: duplicate key value {value!r}"
                seen.add(value)
        for fk in constraints.foreign_keys:
            table = self.table(fk.relation)
            referenced = self.table(fk.referenced)
            targets = {
                referenced.value(row, fk.referenced_attribute) for row in referenced
            }
            for row in table:
                value = table.value(row, fk.attribute)
                if is_null(value):
                    continue
                if value not in targets:
                    return f"{fk}: dangling value {value!r}"
        for nn in constraints.not_nulls:
            table = self.table(nn.relation)
            for row in table:
                if is_null(table.value(row, nn.attribute)):
                    return f"{nn}: NULL value present"
        return None

    def total_rows(self) -> int:
        return sum(len(table) for table in self.tables.values())

    def __str__(self) -> str:
        chunks = []
        for name, table in self.tables.items():
            chunks.append(f"== {name} ==\n{table}")
        return "\n".join(chunks)


# ---------------------------------------------------------------------------
# Table equivalence (Definition 4.4)
# ---------------------------------------------------------------------------


def tables_equivalent(left: Table, right: Table) -> bool:
    """Definition 4.4: equivalence modulo a bijective column mapping.

    The bijection search is pruned by matching per-column value multisets —
    a column can only map to a column with the same bag of values — and the
    candidate mappings are verified against the full row bags.
    """
    if left.ordered or right.ordered:
        return tables_equivalent_ordered(left, right)
    if len(left.attributes) != len(right.attributes):
        return False
    if len(left.rows) != len(right.rows):
        return False
    for permutation in _candidate_column_mappings(left, right):
        if _row_bags_match(left.rows, right.rows, permutation):
            return True
    return False


def tables_equivalent_ordered(left: Table, right: Table) -> bool:
    """Footnote-4 variant: rows must match pairwise *at the same index*."""
    if len(left.attributes) != len(right.attributes):
        return False
    if len(left.rows) != len(right.rows):
        return False
    for permutation in _candidate_column_mappings(left, right):
        if all(
            _permute(right_row, permutation) == left_row
            for left_row, right_row in zip(left.rows, right.rows)
        ):
            return True
    return False


def _candidate_column_mappings(left: Table, right: Table) -> Iterator[tuple[int, ...]]:
    """Yield injective column mappings consistent with per-column value bags.

    A yielded mapping ``m`` sends left column ``i`` to right column ``m[i]``.
    """
    width = len(left.attributes)
    left_signatures = [Counter(row[i] for row in left.rows) for i in range(width)]
    right_signatures = [Counter(row[j] for row in right.rows) for j in range(width)]
    candidates: list[list[int]] = []
    for i in range(width):
        matching = [j for j in range(width) if right_signatures[j] == left_signatures[i]]
        if not matching:
            return
        candidates.append(matching)

    def backtrack(position: int, used: set[int], chosen: list[int]) -> Iterator[tuple[int, ...]]:
        if position == width:
            yield tuple(chosen)
            return
        for j in candidates[position]:
            if j in used:
                continue
            used.add(j)
            chosen.append(j)
            yield from backtrack(position + 1, used, chosen)
            chosen.pop()
            used.remove(j)

    yield from backtrack(0, set(), [])


def _permute(row: Row, mapping: tuple[int, ...]) -> Row:
    """Reorder *row* (a right-table row) into left-table column order."""
    return tuple(row[mapping[i]] for i in range(len(mapping)))


def _row_bags_match(
    left_rows: list[Row], right_rows: list[Row], mapping: tuple[int, ...]
) -> bool:
    permuted = Counter(_permute(row, mapping) for row in right_rows)
    return Counter(left_rows) == permuted
