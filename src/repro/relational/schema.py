"""Relational schemas and integrity constraints (paper Definition 3.5).

A relational schema is ``Ψ_R = (S, ξ)`` where ``S`` maps relation names to
attribute lists and ``ξ`` is a conjunction of atomic constraints:

* ``PK(R) = a`` — primary key,
* ``FK(R.a) = R'.a'`` — foreign key (value inclusion),
* ``NotNull(R, a)`` — non-null attribute.

Attribute names are assumed unique across the schema (as in the paper); this
lets unqualified attribute references in queries resolve unambiguously.  The
induced relational schema produced by ``InferSDT`` introduces ``SRC``/``TGT``
foreign keys per edge table, so those names are suffixed with the relation
name when needed to preserve uniqueness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.common.errors import SchemaError


@dataclass(frozen=True)
class PrimaryKey:
    """``PK(relation) = attribute``: no two rows agree on *attribute*."""

    relation: str
    attribute: str

    def __str__(self) -> str:
        return f"PK({self.relation}) = {self.attribute}"


@dataclass(frozen=True)
class ForeignKey:
    """``FK(relation.attribute) = referenced.referenced_attribute``."""

    relation: str
    attribute: str
    referenced: str
    referenced_attribute: str

    def __str__(self) -> str:
        return (
            f"FK({self.relation}.{self.attribute}) = "
            f"{self.referenced}.{self.referenced_attribute}"
        )


@dataclass(frozen=True)
class NotNull:
    """``NotNull(relation, attribute)``: the attribute never holds NULL."""

    relation: str
    attribute: str

    def __str__(self) -> str:
        return f"NotNull({self.relation}, {self.attribute})"


@dataclass(frozen=True)
class IntegrityConstraints:
    """The conjunction ``ξ`` of atomic integrity constraints."""

    primary_keys: tuple[PrimaryKey, ...] = ()
    foreign_keys: tuple[ForeignKey, ...] = ()
    not_nulls: tuple[NotNull, ...] = ()

    def primary_key_of(self, relation: str) -> str | None:
        """The primary-key attribute of *relation*, or ``None``."""
        for constraint in self.primary_keys:
            if constraint.relation == relation:
                return constraint.attribute
        return None

    def foreign_keys_of(self, relation: str) -> tuple[ForeignKey, ...]:
        return tuple(fk for fk in self.foreign_keys if fk.relation == relation)

    def merge(self, other: "IntegrityConstraints") -> "IntegrityConstraints":
        """Conjunction of two constraint sets (rule ``Set`` in Fig. 13)."""
        return IntegrityConstraints(
            self.primary_keys + other.primary_keys,
            self.foreign_keys + other.foreign_keys,
            self.not_nulls + other.not_nulls,
        )

    def __str__(self) -> str:
        parts = [str(c) for c in (*self.primary_keys, *self.foreign_keys, *self.not_nulls)]
        return " AND ".join(parts) if parts else "TRUE"


@dataclass(frozen=True)
class Relation:
    """A relation name with its ordered attribute list."""

    name: str
    attributes: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("relation needs a non-empty name")
        if len(set(self.attributes)) != len(self.attributes):
            raise SchemaError(f"relation {self.name!r} has duplicate attributes")

    def __str__(self) -> str:
        return f"{self.name}({', '.join(self.attributes)})"


@dataclass(frozen=True)
class RelationalSchema:
    """``Ψ_R = (S, ξ)`` (Definition 3.5)."""

    relations: tuple[Relation, ...]
    constraints: IntegrityConstraints = field(default_factory=IntegrityConstraints)

    def __post_init__(self) -> None:
        names = [r.name for r in self.relations]
        duplicates = {n for n in names if names.count(n) > 1}
        if duplicates:
            raise SchemaError(f"duplicate relation names: {sorted(duplicates)}")

    @classmethod
    def of(
        cls,
        relations: Iterable[Relation],
        constraints: IntegrityConstraints | None = None,
    ) -> "RelationalSchema":
        return cls(tuple(relations), constraints or IntegrityConstraints())

    # -- lookups -----------------------------------------------------------

    def relation(self, name: str) -> Relation:
        for rel in self.relations:
            if rel.name == name:
                return rel
        raise SchemaError(f"unknown relation {name!r}")

    def has_relation(self, name: str) -> bool:
        return any(rel.name == name for rel in self.relations)

    def primary_key_of(self, name: str) -> str:
        """Primary key of *name*; defaults to the first attribute."""
        declared = self.constraints.primary_key_of(name)
        if declared is not None:
            return declared
        return self.relation(name).attributes[0]

    def merge(self, other: "RelationalSchema") -> "RelationalSchema":
        """Disjoint union of two schemas (rule ``Set`` in Fig. 13)."""
        return RelationalSchema(
            self.relations + other.relations,
            self.constraints.merge(other.constraints),
        )

    def __str__(self) -> str:
        lines = ["relational schema:"]
        lines.extend(f"  {relation}" for relation in self.relations)
        if self.constraints.primary_keys or self.constraints.foreign_keys:
            lines.append(f"  with {self.constraints}")
        return "\n".join(lines)
