"""Relational data model (paper Section 3.3).

Schemas map relation names to attribute lists and carry integrity
constraints (primary key, foreign key, not-null).  Instances are bags of
named tuples; :func:`tables_equivalent` implements Definition 4.4 — table
equivalence modulo a bijective column renaming, respecting multiplicities.
"""

from repro.relational.schema import (
    ForeignKey,
    IntegrityConstraints,
    NotNull,
    PrimaryKey,
    Relation,
    RelationalSchema,
)
from repro.relational.instance import (
    Database,
    Row,
    Table,
    tables_equivalent,
    tables_equivalent_ordered,
)

__all__ = [
    "ForeignKey",
    "IntegrityConstraints",
    "NotNull",
    "PrimaryKey",
    "Relation",
    "RelationalSchema",
    "Database",
    "Row",
    "Table",
    "tables_equivalent",
    "tables_equivalent_ordered",
]
