"""SQLite execution (legacy module — **deprecated**).

The original hard-coded in-memory SQLite runner, now a thin compatibility
layer over the pluggable backend subsystem (:mod:`repro.backends`):
:class:`SqliteDatabase` is the ``sqlite-memory`` backend with an eagerly
opened connection, and the module-level helpers keep their historical
signatures.  Every entry point raises a :class:`DeprecationWarning`
pointing at its replacement; new code should go through the registry
(:func:`repro.backends.load_backend`) or the
:class:`~repro.backends.service.GraphitiService` facade instead.
"""

from __future__ import annotations

import warnings

from repro.backends.base import dedup_attributes
from repro.backends.sqlite import SqliteMemoryBackend
from repro.common.values import NULL, Value
from repro.relational.instance import Database, Table
from repro.relational.schema import RelationalSchema
from repro.sql import ast
from repro.sql.pretty import to_sql_text


def _warn_deprecated(legacy: str, replacement: str) -> None:
    warnings.warn(
        f"repro.execution.sqlite_backend.{legacy} is deprecated; use "
        f"{replacement} (see the repro.backends registry) instead",
        DeprecationWarning,
        stacklevel=3,
    )


class SqliteDatabase(SqliteMemoryBackend):
    """An in-memory SQLite instance over a relational schema.

    .. deprecated:: use ``load_backend("sqlite-memory")`` or
       :class:`~repro.backends.service.GraphitiService` instead.

    Unlike registry-created backends (which connect lazily), the legacy
    constructor opens the connection and creates the schema immediately.
    """

    def __init__(self, schema: RelationalSchema) -> None:
        _warn_deprecated(
            "SqliteDatabase", 'repro.backends.load_backend("sqlite-memory")'
        )
        super().__init__(schema)
        self.connect()
        self._ensure_schema()

    @classmethod
    def from_database(cls, database: Database) -> "SqliteDatabase":
        backend = cls(database.schema)
        backend.bulk_load(database)
        return backend


def run_query(query: ast.Query, database: Database) -> Table:
    """Render *query* to SQLite SQL and execute it over *database*.

    .. deprecated:: use :meth:`GraphitiService.run` or a registry backend.
    """
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        backend = SqliteDatabase.from_database(database)
    _warn_deprecated("run_query", "GraphitiService.run")
    with backend:
        text = to_sql_text(query, database.schema)
        return backend.execute(text)


def run_sql_text(sql_text: str, database: Database) -> Table:
    """Execute raw SQL text over *database* (for manually-written queries).

    .. deprecated:: use a registry backend's ``execute`` method.
    """
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        backend = SqliteDatabase.from_database(database)
    _warn_deprecated("run_sql_text", 'load_backend("sqlite-memory").execute')
    with backend:
        return backend.execute(sql_text)


def time_query(backend: SqliteDatabase, sql_text: str, repeats: int = 3) -> float:
    """Median wall-clock execution time of *sql_text* in seconds.

    .. deprecated:: use :meth:`GraphitiService.time` or ``backend.time``.
    """
    _warn_deprecated("time_query", "GraphitiService.time")
    return backend.time(sql_text, repeats=repeats)


def _to_sqlite(value: Value):
    """Legacy helper: convert a repro value for a bound SQLite parameter."""
    if isinstance(value, bool):
        return int(value)
    if value is NULL or isinstance(value, type(NULL)):
        return None
    return value


def _from_sqlite(value) -> Value:
    """Legacy helper: convert an SQLite result cell into a repro value."""
    if value is None:
        return NULL
    return value


_dedup_attributes = dedup_attributes
