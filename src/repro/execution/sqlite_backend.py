"""SQLite execution backend.

Loads a :class:`~repro.relational.instance.Database` (or bulk generated
rows) into an in-memory SQLite database, renders Featherweight SQL algebra
to text (:mod:`repro.sql.pretty`), executes it, and converts results back
into :class:`~repro.relational.instance.Table` values so they can be
compared with the reference evaluator's output (a cross-validation the test
suite performs).
"""

from __future__ import annotations

import sqlite3
import time
from typing import Iterable, Sequence

from repro.common.values import NULL, Value
from repro.relational.instance import Database, Table
from repro.relational.schema import RelationalSchema
from repro.sql import ast
from repro.sql.pretty import create_table_ddl, to_sql_text


class SqliteDatabase:
    """An in-memory SQLite instance over a relational schema."""

    def __init__(self, schema: RelationalSchema) -> None:
        self.schema = schema
        self.connection = sqlite3.connect(":memory:")
        for statement in create_table_ddl(schema):
            self.connection.execute(statement)

    @classmethod
    def from_database(cls, database: Database) -> "SqliteDatabase":
        backend = cls(database.schema)
        for name, table in database.tables.items():
            backend.insert_rows(name, table.rows)
        return backend

    def insert_rows(self, relation: str, rows: Iterable[Sequence[Value]]) -> None:
        relation_def = self.schema.relation(relation)
        placeholders = ", ".join("?" for _ in relation_def.attributes)
        statement = f'INSERT INTO "{relation}" VALUES ({placeholders})'
        self.connection.executemany(
            statement, ([_to_sqlite(v) for v in row] for row in rows)
        )
        self.connection.commit()

    def create_indexes(self) -> None:
        """Index primary keys and foreign keys (fair Table-4 comparison)."""
        counter = 0
        for pk in self.schema.constraints.primary_keys:
            counter += 1
            self.connection.execute(
                f'CREATE INDEX IF NOT EXISTS "idx{counter}" '
                f'ON "{pk.relation}" ("{pk.attribute}")'
            )
        for fk in self.schema.constraints.foreign_keys:
            counter += 1
            self.connection.execute(
                f'CREATE INDEX IF NOT EXISTS "idx{counter}" '
                f'ON "{fk.relation}" ("{fk.attribute}")'
            )
        self.connection.commit()

    def execute(self, sql_text: str) -> Table:
        cursor = self.connection.execute(sql_text)
        attributes = tuple(
            description[0] for description in cursor.description or ()
        )
        rows = [tuple(_from_sqlite(v) for v in row) for row in cursor.fetchall()]
        return Table(_dedup_attributes(attributes), rows)

    def close(self) -> None:
        self.connection.close()

    def __enter__(self) -> "SqliteDatabase":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def run_query(query: ast.Query, database: Database) -> Table:
    """Render *query* to SQLite SQL and execute it over *database*."""
    backend = SqliteDatabase.from_database(database)
    try:
        text = to_sql_text(query, database.schema)
        return backend.execute(text)
    finally:
        backend.close()


def run_sql_text(sql_text: str, database: Database) -> Table:
    """Execute raw SQL text over *database* (for manually-written queries)."""
    backend = SqliteDatabase.from_database(database)
    try:
        return backend.execute(sql_text)
    finally:
        backend.close()


def time_query(backend: SqliteDatabase, sql_text: str, repeats: int = 3) -> float:
    """Median wall-clock execution time of *sql_text* in seconds."""
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        cursor = backend.connection.execute(sql_text)
        cursor.fetchall()
        samples.append(time.perf_counter() - start)
    samples.sort()
    return samples[len(samples) // 2]


def _to_sqlite(value: Value):
    if isinstance(value, bool):
        return int(value)
    if value is NULL or isinstance(value, type(NULL)):
        return None
    return value


def _from_sqlite(value) -> Value:
    if value is None:
        return NULL
    return value


def _dedup_attributes(attributes: tuple[str, ...]) -> tuple[str, ...]:
    """SQLite may report duplicate column names for SELECT *; uniquify."""
    seen: dict[str, int] = {}
    out = []
    for attribute in attributes:
        if attribute in seen:
            seen[attribute] += 1
            out.append(f"{attribute}:{seen[attribute]}")
        else:
            seen[attribute] = 0
            out.append(attribute)
    return tuple(out)
