"""Mock database generation for the execution experiment (paper Section 6.3).

The paper populates each base table with 10k-1M tuples while ensuring the
relationship ``Φ_rdt(R') = R`` between the induced-schema instance ``R'``
and the target-schema instance ``R``.  This generator produces the *induced*
instance first — node tables then edge tables whose SRC/TGT columns are
drawn from the node keys with configurable fan-out — and derives the target
instance through the residual transformer, so the pair is consistent by
construction.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.common.values import Value
from repro.core.sdt import SOURCE_ATTRIBUTE, TARGET_ATTRIBUTE, SdtResult
from repro.graph.schema import GraphSchema
from repro.relational.instance import Database
from repro.relational.schema import RelationalSchema
from repro.transformer.dsl import Transformer
from repro.transformer.semantics import transform_database

_FIRST_NAMES = [
    "Alice", "Bob", "Carol", "Dave", "Erin", "Frank", "Grace", "Heidi",
    "Ivan", "Judy", "Mallory", "Niaj", "Olivia", "Peggy", "Rupert", "Sybil",
]


@dataclass
class MockDataGenerator:
    """Generates consistent (induced, target) instance pairs at scale."""

    graph_schema: GraphSchema
    sdt: SdtResult
    seed: int = 42
    string_pool_size: int = 50
    rng: random.Random = field(init=False)

    def __post_init__(self) -> None:
        self.rng = random.Random(self.seed)

    def induced_instance(self, rows_per_table: int) -> Database:
        """An induced-schema instance with ~*rows_per_table* rows per table."""
        database = Database(self.sdt.schema)
        node_keys: dict[str, list[Value]] = {}
        for node_type in self.graph_schema.node_types:
            table = self.sdt.table_for(node_type.label)
            keys: list[Value] = list(range(1, rows_per_table + 1))
            node_keys[node_type.label] = keys
            for key in keys:
                row: list[Value] = [key]
                for attribute in node_type.keys[1:]:
                    row.append(self._attribute_value(attribute))
                database.insert(table, row)
        for edge_type in self.graph_schema.edge_types:
            table = self.sdt.table_for(edge_type.label)
            sources = node_keys[edge_type.source]
            targets = node_keys[edge_type.target]
            for key in range(1, rows_per_table + 1):
                row = [key]
                for attribute in edge_type.keys[1:]:
                    row.append(self._attribute_value(attribute))
                row.append(self.rng.choice(sources))
                row.append(self.rng.choice(targets))
                database.insert(table, row)
        return database

    def paired_instances(
        self,
        rows_per_table: int,
        residual: Transformer,
        target_schema: RelationalSchema,
    ) -> tuple[Database, Database]:
        """``(R', R)`` with ``Φ_rdt(R') = R`` by construction."""
        induced = self.induced_instance(rows_per_table)
        target = transform_database(residual, induced, target_schema)
        return induced, target

    def _attribute_value(self, attribute: str) -> Value:
        lowered = attribute.lower()
        if "name" in lowered:
            index = self.rng.randrange(self.string_pool_size)
            base = _FIRST_NAMES[index % len(_FIRST_NAMES)]
            return f"{base}{index}"
        return self.rng.randrange(0, max(10, self.string_pool_size))
