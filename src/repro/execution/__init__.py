"""Execution substrate: run Featherweight SQL on SQLite (paper Section 6.3).

The paper's transpilation-quality experiment executes manually-written and
transpiled SQL on populated database instances and compares wall-clock
times.  This package renders algebra to SQLite SQL, loads generated mock
data, and measures execution.
"""

from repro.execution.sqlite_backend import SqliteDatabase, run_query, run_sql_text
from repro.execution.datagen import MockDataGenerator

__all__ = ["SqliteDatabase", "run_query", "run_sql_text", "MockDataGenerator"]
