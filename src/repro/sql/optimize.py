"""Rule-based simplification and cost-based optimization of Featherweight SQL.

The transpiler emits one algebra node per translation rule, which is
faithful but deeply nested.  This module exposes three optimization
levels:

* **level 0** — no rewriting at all (the raw transpiler output);
* **level 1** — the semantics-preserving local rewrites below, applied
  bottom-up to a fixpoint;
* **level 2** — level 1 plus the cost-based passes of
  :mod:`repro.sql.planner`: recursion unrolling (bounded variable-length
  traversals become UNIONs of k-hop join chains when statistics say the
  unrolled plan is cheap), join-graph extraction with predicate pushdown
  (cross products become equi-joins), greedy join reordering driven by
  table statistics, dead-column projection pruning, and common-subplan
  elimination.  Level 2 needs the relational *schema* (to reason about
  scopes) and optionally :mod:`repro.sql.stats` table statistics (to rank
  join orders by estimated cardinality).

Level-1 rewrites:

* ``σ_TRUE(Q) → Q``
* ``σ_p(σ_q(Q)) → σ_{q ∧ p}(Q)``
* ``Π_L(Π_M(Q)) → Π_{L∘M}(Q)``           (expression inlining)
* ``σ_p(Π_M(Q)) → Π_M(σ_{p∘M}(Q))``      (selection pushdown)
* ``ρ_T(Π_M(Q)) → Π_{rename(M)}(Q)``     (renaming as projection)
* ``ρ_T(ρ_S(Q)) → Π(...)``               (via the rule above)
* ``GroupBy(Π_M(Q), ...) → GroupBy(Q, ...)`` with substituted keys/columns
* identity projections are dropped.

Substitution only fires when the inner projection's expressions are pure
(aggregate-free) and every reference resolves; otherwise the tree is left
untouched, so the pass is always safe.  The test suite cross-validates the
optimizer against the reference evaluator on the whole benchmark suite at
every level.

Each rewrite pass reports whether it changed anything through a shared
flag, so the fixpoint loop stops on the first unchanged pass without the
O(n²) whole-tree equality comparison per iteration it used to do.
"""

from __future__ import annotations

import typing

from repro.sql import ast

if typing.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.relational.schema import RelationalSchema
    from repro.sql.stats import DatabaseStats

#: Optimization levels accepted by :func:`optimize` (and the CLI ``--opt``).
OPT_LEVELS = (0, 1, 2)
DEFAULT_OPT_LEVEL = 2


class _Flag:
    """Mutable changed-marker threaded through one rewrite pass."""

    __slots__ = ("changed",)

    def __init__(self) -> None:
        self.changed = False

    def mark(self) -> None:
        self.changed = True


def optimize(
    query: ast.Query,
    level: int = 1,
    schema: "RelationalSchema | None" = None,
    stats: "DatabaseStats | None" = None,
    report: "object | None" = None,
    force_recursive: bool = False,
    depth_cap: "int | None" = None,
    row_scale: float = 1.0,
) -> ast.Query:
    """Optimize *query* at *level* (see the module docstring).

    ``optimize(query)`` keeps its historical meaning: level-1 local
    rewrites only.  Level 2 falls back to level 1 when *schema* is not
    provided (the planner cannot reason about scopes without it).

    *report*, when given, is a :class:`~repro.sql.planner.PlanReport` the
    level-2 passes fill with their decisions (recursive-vs-unrolled
    traversal choices, join orders, hoisted CTEs, the final cardinality
    estimate) — the introspection seam ``repro explain`` renders.

    The serving layer's query budgets reach the planner through two knobs:
    *force_recursive* keeps every traversal fixpoint as a recursive CTE
    (the downgrade retried after an unrolled plan blew its budget), and
    *depth_cap* bounds every fixpoint to that many hops
    (:func:`~repro.sql.planner.cap_recursions` — applied at every level,
    since it enforces a budget rather than optimising).

    *row_scale* is the adaptive-execution correction: a multiplier on
    every base-table row count, set by the serving layer when observed
    actuals keep diverging from estimates without a stats change
    (:attr:`~repro.sql.planner.CardinalityEstimator.row_scale`).
    """
    if level not in OPT_LEVELS:
        raise ValueError(f"unknown optimization level {level!r} (use 0, 1, or 2)")
    if report is not None:
        report.level = level
    if depth_cap is not None:
        from repro.sql.planner import cap_recursions

        query = cap_recursions(query, depth_cap, report=report)
    if level == 0:
        return query
    query = _fixpoint(query)
    if level == 1 or schema is None:
        return query

    from repro.sql.planner import (
        CardinalityEstimator,
        common_subplans,
        expand_recursions,
        plan_joins,
        prune_columns,
    )

    estimator = CardinalityEstimator(schema, stats, row_scale=row_scale)
    query = expand_recursions(
        query, estimator, report=report, force_recursive=force_recursive
    )
    query = _fixpoint(query)
    query = plan_joins(query, schema, estimator, report=report)
    query = _fixpoint(query)
    query = prune_columns(query, schema)
    query = _fixpoint(query)
    query = common_subplans(query, schema, report=report)
    if report is not None:
        try:
            report.estimated_rows = estimator.cardinality(query)
        except Exception:
            report.estimated_rows = None  # estimation must never break planning
    return query


def _fixpoint(query: ast.Query) -> ast.Query:
    """Apply the level-1 rewrite rules bottom-up until nothing fires."""
    for _ in range(50):  # safety guard; rules strictly shrink in practice
        flag = _Flag()
        query = _rewrite(query, flag)
        if not flag.changed:
            break
    return query


# ---------------------------------------------------------------------------
# One bottom-up rewriting pass
# ---------------------------------------------------------------------------


def _rewrite(query: ast.Query, flag: _Flag) -> ast.Query:
    query = _rewrite_children(query, flag)
    if isinstance(query, ast.Selection):
        if query.predicate == ast.TRUE:
            flag.mark()
            return query.query
        inner = query.query
        if isinstance(inner, ast.Selection):
            flag.mark()
            return ast.Selection(inner.query, ast.And(inner.predicate, query.predicate))
        if isinstance(inner, ast.Projection) and not inner.distinct:
            substituted = _substitute_predicate(query.predicate, inner.columns)
            if substituted is not None:
                flag.mark()
                return ast.Projection(
                    ast.Selection(inner.query, substituted), inner.columns
                )
        return query
    if isinstance(query, ast.Projection):
        inner = query.query
        if (
            isinstance(inner, ast.Projection)
            and not inner.distinct
            and _all_pure(inner.columns)
        ):
            columns = _substitute_columns(query.columns, inner.columns)
            if columns is not None:
                flag.mark()
                return ast.Projection(inner.query, columns, query.distinct)
        return query
    if isinstance(query, ast.Renaming):
        inner = query.query
        if isinstance(inner, ast.Projection) and not inner.distinct:
            renamed = tuple(
                ast.OutputColumn(
                    f"{query.name}.{column.alias.replace('.', '_')}",
                    column.expression,
                )
                for column in inner.columns
            )
            flag.mark()
            return ast.Projection(inner.query, renamed)
        return query
    if isinstance(query, ast.GroupBy):
        inner = query.query
        if (
            isinstance(inner, ast.Projection)
            and not inner.distinct
            and _all_pure(inner.columns)
        ):
            keys = []
            for key in query.keys:
                substituted = _substitute_expression(key, inner.columns)
                if substituted is None:
                    return query
                keys.append(substituted)
            columns = _substitute_columns(query.columns, inner.columns)
            having = _substitute_predicate(query.having, inner.columns)
            if columns is None or having is None:
                return query
            flag.mark()
            return ast.GroupBy(inner.query, tuple(keys), columns, having)
        return query
    return query


def _rewrite_children(query: ast.Query, flag: _Flag) -> ast.Query:
    return ast.map_children(
        query,
        lambda q: _rewrite(q, flag),
        lambda p: _rewrite_predicate(p, flag),
    )


def _rewrite_predicate(predicate: ast.Predicate, flag: _Flag) -> ast.Predicate:
    if isinstance(predicate, ast.And):
        left = _rewrite_predicate(predicate.left, flag)
        right = _rewrite_predicate(predicate.right, flag)
        if left == ast.TRUE:
            flag.mark()
            return right
        if right == ast.TRUE:
            flag.mark()
            return left
        return ast.And(left, right)
    if isinstance(predicate, ast.Or):
        return ast.Or(
            _rewrite_predicate(predicate.left, flag),
            _rewrite_predicate(predicate.right, flag),
        )
    if isinstance(predicate, ast.Not):
        return ast.Not(_rewrite_predicate(predicate.operand, flag))
    if isinstance(predicate, ast.InQuery):
        return ast.InQuery(
            predicate.operands, _rewrite(predicate.query, flag), predicate.negated
        )
    if isinstance(predicate, ast.ExistsQuery):
        return ast.ExistsQuery(_rewrite(predicate.query, flag), predicate.negated)
    return predicate


# ---------------------------------------------------------------------------
# Substitution through projection columns
# ---------------------------------------------------------------------------


def _all_pure(columns: tuple[ast.OutputColumn, ...]) -> bool:
    return all(not _has_aggregate(c.expression) for c in columns)


def _has_aggregate(expression: ast.Expression) -> bool:
    if isinstance(expression, ast.Aggregate):
        return True
    if isinstance(expression, ast.BinaryOp):
        return _has_aggregate(expression.left) or _has_aggregate(expression.right)
    if isinstance(expression, ast.CastPredicate):
        return False
    return False


def _lookup(name: str, columns: tuple[ast.OutputColumn, ...]) -> ast.Expression | None:
    exact = [c for c in columns if c.alias == name]
    if len(exact) == 1:
        return exact[0].expression
    local = [c for c in columns if c.alias.rsplit(".", 1)[-1] == name]
    if len(local) == 1:
        return local[0].expression
    return None


def _substitute_expression(
    expression: ast.Expression, columns: tuple[ast.OutputColumn, ...]
) -> ast.Expression | None:
    if isinstance(expression, ast.AttributeRef):
        return _lookup(expression.name, columns)
    if isinstance(expression, ast.Literal):
        return expression
    if isinstance(expression, ast.BinaryOp):
        left = _substitute_expression(expression.left, columns)
        right = _substitute_expression(expression.right, columns)
        if left is None or right is None:
            return None
        return ast.BinaryOp(expression.op, left, right)
    if isinstance(expression, ast.Aggregate):
        if expression.argument is None:
            return expression
        argument = _substitute_expression(expression.argument, columns)
        if argument is None:
            return None
        return ast.Aggregate(expression.function, argument, expression.distinct)
    if isinstance(expression, ast.CastPredicate):
        predicate = _substitute_predicate(expression.predicate, columns)
        if predicate is None:
            return None
        return ast.CastPredicate(predicate)
    return None


def _substitute_columns(
    outer: tuple[ast.OutputColumn, ...], inner: tuple[ast.OutputColumn, ...]
) -> tuple[ast.OutputColumn, ...] | None:
    out = []
    for column in outer:
        substituted = _substitute_expression(column.expression, inner)
        if substituted is None:
            return None
        out.append(ast.OutputColumn(column.alias, substituted))
    return tuple(out)


def _substitute_predicate(
    predicate: ast.Predicate, columns: tuple[ast.OutputColumn, ...]
) -> ast.Predicate | None:
    if isinstance(predicate, ast.BoolLit):
        return predicate
    if isinstance(predicate, ast.Comparison):
        left = _substitute_expression(predicate.left, columns)
        right = _substitute_expression(predicate.right, columns)
        if left is None or right is None:
            return None
        return ast.Comparison(predicate.op, left, right)
    if isinstance(predicate, ast.IsNull):
        operand = _substitute_expression(predicate.operand, columns)
        if operand is None:
            return None
        return ast.IsNull(operand, predicate.negated)
    if isinstance(predicate, ast.InValues):
        operand = _substitute_expression(predicate.operand, columns)
        if operand is None:
            return None
        return ast.InValues(operand, predicate.values)
    if isinstance(predicate, ast.And):
        left = _substitute_predicate(predicate.left, columns)
        right = _substitute_predicate(predicate.right, columns)
        if left is None or right is None:
            return None
        return ast.And(left, right)
    if isinstance(predicate, ast.Or):
        left = _substitute_predicate(predicate.left, columns)
        right = _substitute_predicate(predicate.right, columns)
        if left is None or right is None:
            return None
        return ast.Or(left, right)
    if isinstance(predicate, ast.Not):
        operand = _substitute_predicate(predicate.operand, columns)
        if operand is None:
            return None
        return ast.Not(operand)
    if isinstance(predicate, (ast.InQuery, ast.ExistsQuery)):
        # A subquery may be *correlated* with the scope being rewritten;
        # moving it below a projection could capture or lose references.
        # Bail out — the enclosing rewrite is skipped, which is always safe.
        return None
    return None
