"""Table statistics for cardinality estimation.

The optimizer's join planner (:mod:`repro.sql.planner`) ranks candidate
join orders by estimated output cardinality.  The estimates come from two
numbers per base table, collected at bulk-load time
(:meth:`repro.backends.base.DbApiBackend.bulk_load` and
:meth:`repro.backends.service.GraphitiService.load_database`):

* the row count, and
* the number of distinct non-null values per column (NDV).

Small tables get an exact one-pass count.  Tables above
:data:`SAMPLE_THRESHOLD` rows are *reservoir sampled* (Algorithm R) and
their NDVs estimated with the GEE estimator (Charikar et al., PODS 2000:
``D̂ = sqrt(n/r)·f₁ + Σ_{j≥2} f_j``), so ``load_database`` on large inputs
stops paying a full O(rows×cols) set-building pass.  Sampled stats carry
explicit per-column bounds — the true NDV of a column always lies in
``[d_seen, d_seen + (n − r)]`` because every unsampled row can contribute
at most one new value — and the estimate is clamped into that interval.

Columns holding unhashable values (list/dict properties) are hashed by a
stable canonical key; if even that fails the NDV is recorded as ``None``
(unknown) instead of crashing, and the estimator falls back to its
Selinger default for that column.

When no statistics are available at all the estimator falls back to the
textbook Selinger defaults (see
:class:`repro.sql.planner.CardinalityEstimator`), so plans are still
produced — just ranked by heuristics instead of data.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.relational.instance import Database

#: Tables with at most this many rows get exact NDV counting; larger
#: tables are reservoir sampled.  Exact counting is O(rows×cols) set
#: building — fine for small instances, a measurable load-time tax at
#: bench scale.
SAMPLE_THRESHOLD = 4096

#: Reservoir size used above the threshold.
SAMPLE_SIZE = 1024


@dataclass(frozen=True)
class TableStats:
    """Statistics for one base relation.

    ``distinct`` maps a column's local name to its NDV — exact when
    ``sampled`` is false, a GEE estimate otherwise — or to ``None`` when
    the column's values could not be counted (unhashable, no canonical
    key).  ``ndv_bounds`` carries the declared ``(low, high)`` interval
    per sampled column; empty for exact stats.
    """

    row_count: int
    distinct: Mapping[str, int | None] = field(default_factory=dict)
    sampled: bool = False
    sample_size: int = 0
    ndv_bounds: Mapping[str, tuple[int, int]] = field(default_factory=dict)

    def distinct_of(self, column: str) -> int | None:
        """NDV of *column* (local name), or ``None`` when unknown."""
        return self.distinct.get(column)

    def bounds_of(self, column: str) -> tuple[int, int] | None:
        """Declared NDV bounds for *column*; exact stats return the point
        interval ``(ndv, ndv)``, unknown columns ``None``."""
        if column in self.ndv_bounds:
            return self.ndv_bounds[column]
        count = self.distinct.get(column)
        if count is None:
            return None
        return (count, count)


#: Relation name → its statistics.
DatabaseStats = Mapping[str, TableStats]


def canonical_key(value: object) -> object:
    """A hashable stand-in for *value*, stable across equal values.

    Lists/tuples become tuples of canonical keys, dicts become sorted
    item tuples, sets become frozensets.  Raises ``TypeError`` when no
    stable key exists (callers record NDV ``None`` for the column).
    """
    if isinstance(value, (list, tuple)):
        return tuple(canonical_key(item) for item in value)
    if isinstance(value, dict):
        return tuple(
            sorted((str(k), canonical_key(v)) for k, v in value.items())
        )
    if isinstance(value, (set, frozenset)):
        return frozenset(canonical_key(item) for item in value)
    hash(value)  # raises TypeError for exotic unhashables
    return value


def _gee_estimate(freq: dict, sampled_rows: int, total_rows: int) -> int:
    """GEE NDV estimate from a sample's value-frequency table, clamped
    into the sound interval ``[d_seen, d_seen + (total − sampled)]``."""
    d_seen = len(freq)
    if d_seen == 0 or sampled_rows <= 0:
        return 0
    singletons = sum(1 for count in freq.values() if count == 1)
    estimate = (
        math.sqrt(total_rows / sampled_rows) * singletons
        + (d_seen - singletons)
    )
    upper = d_seen + max(total_rows - sampled_rows, 0)
    return max(d_seen, min(int(round(estimate)), upper))


def _reservoir(rows: list, size: int, rng: random.Random) -> list:
    """Algorithm R: a uniform *size*-row sample of *rows*."""
    sample = list(rows[:size])
    for index in range(size, len(rows)):
        slot = rng.randint(0, index)
        if slot < size:
            sample[slot] = rows[index]
    return sample


def _exact_table_stats(table) -> TableStats:
    from repro.common.values import is_null

    seen: list[set | None] = [set() for _ in table.attributes]
    rows = 0
    for row in table.rows:
        rows += 1
        for index, value in enumerate(row):
            bucket = seen[index]
            if bucket is None or is_null(value):
                continue
            try:
                bucket.add(canonical_key(value))
            except TypeError:
                # Unhashable with no canonical key: NDV unknown, not a crash.
                seen[index] = None
    return TableStats(
        rows,
        {
            attribute: (None if seen[index] is None else len(seen[index]))
            for index, attribute in enumerate(table.attributes)
        },
    )


def _sampled_table_stats(
    table, sample_size: int, rng: random.Random
) -> TableStats:
    from repro.common.values import is_null

    total = len(table.rows)
    sample = _reservoir(table.rows, sample_size, rng)
    sampled_rows = len(sample)
    unsampled = max(total - sampled_rows, 0)
    freqs: list[dict | None] = [{} for _ in table.attributes]
    for row in sample:
        for index, value in enumerate(row):
            freq = freqs[index]
            if freq is None or is_null(value):
                continue
            try:
                key = canonical_key(value)
            except TypeError:
                freqs[index] = None
                continue
            freq[key] = freq.get(key, 0) + 1
    distinct: dict[str, int | None] = {}
    bounds: dict[str, tuple[int, int]] = {}
    for index, attribute in enumerate(table.attributes):
        freq = freqs[index]
        if freq is None:
            distinct[attribute] = None
            continue
        distinct[attribute] = _gee_estimate(freq, sampled_rows, total)
        bounds[attribute] = (len(freq), len(freq) + unsampled)
    return TableStats(
        total,
        distinct,
        sampled=True,
        sample_size=sampled_rows,
        ndv_bounds=bounds,
    )


def collect_stats(
    database: "Database",
    *,
    sample_threshold: int = SAMPLE_THRESHOLD,
    sample_size: int = SAMPLE_SIZE,
    seed: int = 0,
) -> dict[str, TableStats]:
    """Row-count + NDV collection over every table of *database*.

    Tables at or under *sample_threshold* rows are counted exactly;
    larger tables are reservoir sampled with *sample_size* rows (seeded
    per table, so repeated collections over unchanged data produce an
    identical — and identically digested — result).
    """
    if sample_size < 1:
        raise ValueError("sample_size must be positive")
    stats: dict[str, TableStats] = {}
    for name, table in database.tables.items():
        if len(table.rows) <= max(sample_threshold, 0):
            stats[name] = _exact_table_stats(table)
        else:
            rng = random.Random(f"{seed}:{name}")
            stats[name] = _sampled_table_stats(table, sample_size, rng)
    return stats
