"""Table statistics for cardinality estimation.

The optimizer's join planner (:mod:`repro.sql.planner`) ranks candidate
join orders by estimated output cardinality.  The estimates come from two
numbers per base table, collected in one pass over the data at bulk-load
time (:meth:`repro.backends.base.DbApiBackend.bulk_load` and
:meth:`repro.backends.service.GraphitiService.load_database`):

* the row count, and
* the number of distinct non-null values per column (NDV).

When no statistics are available the estimator falls back to the textbook
Selinger defaults (see :class:`repro.sql.planner.CardinalityEstimator`),
so plans are still produced — just ranked by heuristics instead of data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.relational.instance import Database


@dataclass(frozen=True)
class TableStats:
    """Statistics for one base relation."""

    row_count: int
    distinct: Mapping[str, int] = field(default_factory=dict)

    def distinct_of(self, column: str) -> int | None:
        """NDV of *column* (local name), or ``None`` when unknown."""
        return self.distinct.get(column)


#: Relation name → its statistics.
DatabaseStats = Mapping[str, TableStats]


def collect_stats(database: "Database") -> dict[str, TableStats]:
    """One-pass row-count + NDV collection over every table of *database*."""
    from repro.common.values import is_null

    stats: dict[str, TableStats] = {}
    for name, table in database.tables.items():
        seen: list[set] = [set() for _ in table.attributes]
        rows = 0
        for row in table.rows:
            rows += 1
            for index, value in enumerate(row):
                if not is_null(value):
                    seen[index].add(value)
        stats[name] = TableStats(
            rows,
            {
                attribute: len(seen[index])
                for index, attribute in enumerate(table.attributes)
            },
        )
    return stats
