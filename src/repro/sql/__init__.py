"""Featherweight SQL: AST, parser, bag-semantics evaluator, rendering."""

from repro.sql import ast
from repro.sql.parser import parse_sql
from repro.sql.semantics import evaluate_query
from repro.sql.analysis import ast_size, referenced_relations, uses_aggregation, uses_outer_join
from repro.sql.dialect import SqlDialect, dialect_for, register_dialect, registered_dialects
from repro.sql.pretty import create_table_ddl, to_cte_sql, to_sql_text
from repro.sql.optimize import optimize

__all__ = [
    "ast",
    "parse_sql",
    "evaluate_query",
    "ast_size",
    "referenced_relations",
    "uses_aggregation",
    "uses_outer_join",
    "SqlDialect",
    "dialect_for",
    "register_dialect",
    "registered_dialects",
    "create_table_ddl",
    "to_cte_sql",
    "to_sql_text",
    "optimize",
]
