"""Featherweight SQL abstract syntax (paper Figure 10).

The grammar::

    Query  Q ::= R | Pi_L(Q) | sigma_phi(Q) | rho_R(Q) | Q u Q | Q U+ Q | Q (x) Q
               | GroupBy(Q, E*, L, phi) | With(Q, R, Q) | OrderBy(Q, a, b)
    AttrList L ::= E | rho_a(E) | L, L
    AttrExpr E ::= a | v | Cast(phi) | Agg(E) | E (+) E
    Predicate phi ::= b | E (.) E | IsNull(E) | E in v* | E in Q
               | phi and phi | phi or phi | not phi
    JoinOp  (x) ::= cross | inner | left | right | full

Attribute naming convention: relation scans produce unqualified attributes;
``rho_T(Q)`` re-qualifies every output attribute to ``T.<flattened local
name>`` (dots in the old name become underscores).  References resolve by
exact match first, then by unique local-name match — mirroring SQL name
resolution while keeping the algebra purely positional-free.

All nodes are frozen dataclasses; attribute lists and predicates reuse the
same 3VL value domain as the Cypher side.
"""

from __future__ import annotations

import enum
import typing
from dataclasses import dataclass

from repro.common.values import Value

# ---------------------------------------------------------------------------
# Attribute expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AttributeRef:
    """``a`` — a (possibly qualified) attribute reference like ``c2.CID``."""

    name: str

    def __str__(self) -> str:
        return self.name

    @property
    def local_name(self) -> str:
        """The unqualified trailing component of the reference."""
        return self.name.rsplit(".", 1)[-1]


@dataclass(frozen=True)
class Literal:
    """A constant value ``v``."""

    value: Value

    def __str__(self) -> str:
        if isinstance(self.value, str):
            return f"'{self.value}'"
        return repr(self.value)


@dataclass(frozen=True)
class Aggregate:
    """``Agg(E)``; ``argument is None`` encodes ``Count(*)``."""

    function: str
    argument: "Expression | None"
    distinct: bool = False

    VALID = ("Count", "Avg", "Sum", "Min", "Max")

    def __post_init__(self) -> None:
        if self.function not in self.VALID:
            raise ValueError(f"unknown aggregate {self.function!r}")
        if self.argument is None and self.function != "Count":
            raise ValueError(f"{self.function}(*) is not well-formed")

    def __str__(self) -> str:
        inner = "*" if self.argument is None else str(self.argument)
        if self.distinct:
            inner = f"DISTINCT {inner}"
        return f"{self.function}({inner})"


@dataclass(frozen=True)
class BinaryOp:
    """Arithmetic ``E ⊕ E``."""

    op: str
    left: "Expression"
    right: "Expression"

    VALID = ("+", "-", "*", "/", "%")

    def __post_init__(self) -> None:
        if self.op not in self.VALID:
            raise ValueError(f"unknown arithmetic operator {self.op!r}")

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class CastPredicate:
    """``Cast(φ)`` — predicate as 1 / 0 / NULL."""

    predicate: "Predicate"

    def __str__(self) -> str:
        return f"Cast({self.predicate})"


Expression = typing.Union[AttributeRef, Literal, Aggregate, BinaryOp, CastPredicate]


@dataclass(frozen=True)
class OutputColumn:
    """``ρ_a(E)`` — one projection-list entry with its output name."""

    alias: str
    expression: Expression

    def __str__(self) -> str:
        return f"{self.expression} AS {self.alias}"


# ---------------------------------------------------------------------------
# Predicates
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class BoolLit:
    value: bool

    def __str__(self) -> str:
        return "TRUE" if self.value else "FALSE"


@dataclass(frozen=True)
class Comparison:
    op: str
    left: Expression
    right: Expression

    VALID = ("=", "<>", "<", "<=", ">", ">=")

    def __post_init__(self) -> None:
        if self.op not in self.VALID:
            raise ValueError(f"unknown comparison operator {self.op!r}")

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


@dataclass(frozen=True)
class IsNull:
    operand: Expression
    negated: bool = False

    def __str__(self) -> str:
        suffix = "IS NOT NULL" if self.negated else "IS NULL"
        return f"{self.operand} {suffix}"


@dataclass(frozen=True)
class InValues:
    """``E ∈ v̄``."""

    operand: Expression
    values: tuple[Value, ...]

    def __str__(self) -> str:
        return f"{self.operand} IN {list(self.values)!r}"


@dataclass(frozen=True)
class InQuery:
    """``Ē ∈ Q`` — (tuple) membership in a subquery's result bag.

    The paper's rule P-Exists produces a two-attribute membership test, so
    the left side is a tuple of expressions matched positionally against the
    subquery's output columns.
    """

    operands: tuple[Expression, ...]
    query: "Query"
    negated: bool = False

    def __str__(self) -> str:
        left = ", ".join(str(e) for e in self.operands)
        keyword = "NOT IN" if self.negated else "IN"
        return f"({left}) {keyword} (<subquery>)"


@dataclass(frozen=True)
class ExistsQuery:
    """``EXISTS (Q)`` — non-emptiness of a (possibly correlated) subquery."""

    query: "Query"
    negated: bool = False

    def __str__(self) -> str:
        keyword = "NOT EXISTS" if self.negated else "EXISTS"
        return f"{keyword} (<subquery>)"


@dataclass(frozen=True)
class And:
    left: "Predicate"
    right: "Predicate"

    def __str__(self) -> str:
        return f"({self.left} AND {self.right})"


@dataclass(frozen=True)
class Or:
    left: "Predicate"
    right: "Predicate"

    def __str__(self) -> str:
        return f"({self.left} OR {self.right})"


@dataclass(frozen=True)
class Not:
    operand: "Predicate"

    def __str__(self) -> str:
        return f"(NOT {self.operand})"


Predicate = typing.Union[
    BoolLit, Comparison, IsNull, InValues, InQuery, ExistsQuery, And, Or, Not
]

TRUE = BoolLit(True)
FALSE = BoolLit(False)


# ---------------------------------------------------------------------------
# Queries
# ---------------------------------------------------------------------------


class JoinKind(enum.Enum):
    """``⊗ ::= × | ⋈ | ⟕ | ⟖ | ⟗``."""

    CROSS = "CROSS"
    INNER = "INNER"
    LEFT = "LEFT"
    RIGHT = "RIGHT"
    FULL = "FULL"


@dataclass(frozen=True)
class Relation:
    """``R`` — a base-relation scan."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Projection:
    """``Π_L(Q)``."""

    query: "Query"
    columns: tuple[OutputColumn, ...]
    distinct: bool = False

    def __post_init__(self) -> None:
        if not self.columns:
            raise ValueError("projection needs at least one output column")


@dataclass(frozen=True)
class Selection:
    """``σ_φ(Q)``."""

    query: "Query"
    predicate: Predicate


@dataclass(frozen=True)
class Renaming:
    """``ρ_T(Q)`` — re-qualify every output attribute under prefix *name*."""

    name: str
    query: "Query"


@dataclass(frozen=True)
class Join:
    """``Q ⊗_φ Q``; the predicate is ignored for cross joins."""

    kind: JoinKind
    left: "Query"
    right: "Query"
    predicate: Predicate = TRUE


@dataclass(frozen=True)
class UnionOp:
    """``Q ∪ Q`` (set) or ``Q ⊎ Q`` (bag) depending on *all*."""

    left: "Query"
    right: "Query"
    all: bool = False


@dataclass(frozen=True)
class GroupBy:
    """``GroupBy(Q, Ē, L, φ)`` — group, aggregate, and filter with HAVING.

    Grouping by the empty key list partitions each row into the single
    group of its (empty) key tuple; on empty input there are **no** groups,
    matching the paper's Cypher aggregation semantics (Appendix A) rather
    than SQL's one-row global aggregate.  This keeps the two reference
    evaluators aligned, which is what equivalence checking requires.
    """

    query: "Query"
    keys: tuple[Expression, ...]
    columns: tuple[OutputColumn, ...]
    having: Predicate = TRUE


@dataclass(frozen=True)
class WithQuery:
    """``With(Q1, R, Q2)`` — bind *name* to ``Q1`` while evaluating ``Q2``."""

    name: str
    definition: "Query"
    body: "Query"


@dataclass(frozen=True)
class OrderBy:
    """``OrderBy(Q, ā, b̄)`` — sort; output is order-sensitive (Def 4.4 fn. 4)."""

    query: "Query"
    keys: tuple[Expression, ...]
    ascending: tuple[bool, ...]
    limit: int | None = None

    def __post_init__(self) -> None:
        if len(self.keys) != len(self.ascending):
            raise ValueError("OrderBy needs one direction per key")


@dataclass(frozen=True)
class ReachInfo:
    """Traversal metadata a :class:`RecursiveQuery` may carry.

    The transpiler attaches it to the fixpoints it builds for
    variable-length relationship patterns, recording enough structure for
    the cost-based planner to rewrite the recursion into an equivalent
    bounded unrolling (a UNION of k-hop join chains) without re-deriving
    it from the algebra:

    * *edge_table* / *fanout_columns* — the scanned edge relation and the
      column(s) a hop fans out over (``SRC``, ``TGT``, or both for
      undirected traversal), used for cardinality estimation;
    * *hop_relation* — the name of the sibling CTE holding the oriented
      one-hop ``(src, tgt)`` pairs, which unrolled join chains rescan;
    * *min_hops* / *max_hops* — the hop bounds (``None`` = unbounded, in
      which case unrolling is impossible).
    """

    edge_table: str
    hop_relation: str
    fanout_columns: tuple[str, ...]
    min_hops: int
    max_hops: int | None


@dataclass(frozen=True)
class RecursiveQuery:
    """``WithRec(R, Q_base, Q_step, Q_body)`` — a recursive CTE.

    Binds *name* to the fixpoint of ``base ∪ step`` (``∪`` is bag union
    when *union_all*, else distinct union — the cycle-safe default) while
    evaluating *body*; *step* and *body* reference the binding as
    ``Relation(name)``.  Evaluation follows the SQL engines' queue
    semantics: each round the step sees only the rows the previous round
    added.  Rendered as ``WITH RECURSIVE name(columns) AS (base UNION
    step) body``.
    """

    name: str
    columns: tuple[str, ...]
    base: "Query"
    step: "Query"
    body: "Query"
    union_all: bool = False
    reach: "ReachInfo | None" = None

    def __post_init__(self) -> None:
        if not self.columns:
            raise ValueError("recursive query needs at least one column")


Query = typing.Union[
    Relation,
    Projection,
    Selection,
    Renaming,
    Join,
    UnionOp,
    GroupBy,
    WithQuery,
    OrderBy,
    RecursiveQuery,
]


def map_children(
    query: Query,
    query_fn: typing.Callable[["Query"], "Query"],
    predicate_fn: typing.Callable[["Predicate"], "Predicate"] | None = None,
) -> Query:
    """Rebuild *query* with *query_fn* applied to each direct child query
    (and *predicate_fn*, when given, to each attached predicate).

    The single structural-recursion helper behind the optimizer's rewrite,
    planning, pruning, and CSE passes — node types are enumerated once here,
    so a new ``Query`` variant only needs one traversal updated.  Leaf nodes
    (``Relation``) are returned unchanged.
    """
    pf = predicate_fn if predicate_fn is not None else (lambda p: p)
    if isinstance(query, Projection):
        return Projection(query_fn(query.query), query.columns, query.distinct)
    if isinstance(query, Selection):
        return Selection(query_fn(query.query), pf(query.predicate))
    if isinstance(query, Renaming):
        return Renaming(query.name, query_fn(query.query))
    if isinstance(query, Join):
        return Join(
            query.kind, query_fn(query.left), query_fn(query.right), pf(query.predicate)
        )
    if isinstance(query, UnionOp):
        return UnionOp(query_fn(query.left), query_fn(query.right), query.all)
    if isinstance(query, GroupBy):
        return GroupBy(query_fn(query.query), query.keys, query.columns, pf(query.having))
    if isinstance(query, WithQuery):
        return WithQuery(query.name, query_fn(query.definition), query_fn(query.body))
    if isinstance(query, OrderBy):
        return OrderBy(query_fn(query.query), query.keys, query.ascending, query.limit)
    if isinstance(query, RecursiveQuery):
        return RecursiveQuery(
            query.name,
            query.columns,
            query_fn(query.base),
            query_fn(query.step),
            query_fn(query.body),
            query.union_all,
            query.reach,
        )
    return query


def conjuncts(predicate: Predicate) -> list[Predicate]:
    """Flatten a conjunction into its list of conjuncts (``TRUE`` → ``[]``)."""
    if isinstance(predicate, And):
        return conjuncts(predicate.left) + conjuncts(predicate.right)
    if predicate == TRUE:
        return []
    return [predicate]


def conjoin(predicates: typing.Iterable[Predicate]) -> Predicate:
    """Left-deep conjunction of *predicates* (empty → ``TRUE``)."""
    result: Predicate | None = None
    for predicate in predicates:
        result = predicate if result is None else And(result, predicate)
    return TRUE if result is None else result


def flatten_attribute(name: str) -> str:
    """Flatten a qualified attribute into a legal local name (``a.b`` → ``a_b``)."""
    return name.replace(".", "_")


def columns_of(expressions: typing.Iterable[Expression], names: typing.Iterable[str]) -> tuple[OutputColumn, ...]:
    """Zip expressions and aliases into projection columns."""
    return tuple(OutputColumn(alias, expr) for alias, expr in zip(names, expressions))
