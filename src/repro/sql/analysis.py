"""Static analysis over Featherweight SQL ASTs.

``ast_size`` is the Table-1 metric; the ``uses_*`` predicates decide
backend-fragment membership (the Mediator-style deductive verifier rejects
aggregation and outer joins, matching the paper's Section 6.2).
"""

from __future__ import annotations

import typing

from repro.sql import ast

if typing.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.relational.schema import RelationalSchema


def ast_size(node: object) -> int:
    """Number of AST nodes in a query/expression/predicate."""
    if isinstance(node, ast.Relation):
        return 1
    if isinstance(node, ast.Projection):
        return 1 + ast_size(node.query) + sum(
            ast_size(c.expression) for c in node.columns
        )
    if isinstance(node, ast.Selection):
        return 1 + ast_size(node.query) + ast_size(node.predicate)
    if isinstance(node, ast.Renaming):
        return 1 + ast_size(node.query)
    if isinstance(node, ast.Join):
        return 1 + ast_size(node.left) + ast_size(node.right) + ast_size(node.predicate)
    if isinstance(node, ast.UnionOp):
        return 1 + ast_size(node.left) + ast_size(node.right)
    if isinstance(node, ast.GroupBy):
        return (
            1
            + ast_size(node.query)
            + sum(ast_size(k) for k in node.keys)
            + sum(ast_size(c.expression) for c in node.columns)
            + ast_size(node.having)
        )
    if isinstance(node, ast.WithQuery):
        return 1 + ast_size(node.definition) + ast_size(node.body)
    if isinstance(node, ast.RecursiveQuery):
        return 1 + ast_size(node.base) + ast_size(node.step) + ast_size(node.body)
    if isinstance(node, ast.OrderBy):
        return 1 + ast_size(node.query) + sum(ast_size(k) for k in node.keys)
    if isinstance(node, (ast.AttributeRef, ast.Literal, ast.BoolLit)):
        return 1
    if isinstance(node, ast.Aggregate):
        return 1 + (ast_size(node.argument) if node.argument is not None else 0)
    if isinstance(node, ast.BinaryOp):
        return 1 + ast_size(node.left) + ast_size(node.right)
    if isinstance(node, ast.CastPredicate):
        return 1 + ast_size(node.predicate)
    if isinstance(node, ast.Comparison):
        return 1 + ast_size(node.left) + ast_size(node.right)
    if isinstance(node, ast.IsNull):
        return 1 + ast_size(node.operand)
    if isinstance(node, ast.InValues):
        return 1 + ast_size(node.operand) + len(node.values)
    if isinstance(node, ast.InQuery):
        return 1 + sum(ast_size(e) for e in node.operands) + ast_size(node.query)
    if isinstance(node, ast.ExistsQuery):
        return 1 + ast_size(node.query)
    if isinstance(node, (ast.And, ast.Or)):
        return 1 + ast_size(node.left) + ast_size(node.right)
    if isinstance(node, ast.Not):
        return 1 + ast_size(node.operand)
    raise TypeError(f"not a SQL AST node: {type(node).__name__}")


def referenced_relations(query: ast.Query) -> set[str]:
    """Base relations scanned anywhere in *query* (CTE names excluded)."""
    names: set[str] = set()
    cte_names: set[str] = set()

    def walk_query(node: ast.Query) -> None:
        if isinstance(node, ast.Relation):
            if node.name not in cte_names:
                names.add(node.name)
        elif isinstance(node, ast.Projection):
            for column in node.columns:
                walk_expression(column.expression)
            walk_query(node.query)
        elif isinstance(node, ast.Selection):
            walk_predicate(node.predicate)
            walk_query(node.query)
        elif isinstance(node, ast.Renaming):
            walk_query(node.query)
        elif isinstance(node, ast.Join):
            walk_predicate(node.predicate)
            walk_query(node.left)
            walk_query(node.right)
        elif isinstance(node, ast.UnionOp):
            walk_query(node.left)
            walk_query(node.right)
        elif isinstance(node, ast.GroupBy):
            for key in node.keys:
                walk_expression(key)
            for column in node.columns:
                walk_expression(column.expression)
            walk_predicate(node.having)
            walk_query(node.query)
        elif isinstance(node, ast.WithQuery):
            walk_query(node.definition)
            cte_names.add(node.name)
            walk_query(node.body)
        elif isinstance(node, ast.RecursiveQuery):
            walk_query(node.base)
            cte_names.add(node.name)
            walk_query(node.step)
            walk_query(node.body)
        elif isinstance(node, ast.OrderBy):
            walk_query(node.query)

    def walk_expression(node: ast.Expression) -> None:
        if isinstance(node, ast.BinaryOp):
            walk_expression(node.left)
            walk_expression(node.right)
        elif isinstance(node, ast.CastPredicate):
            walk_predicate(node.predicate)
        elif isinstance(node, ast.Aggregate) and node.argument is not None:
            walk_expression(node.argument)

    def walk_predicate(node: ast.Predicate) -> None:
        if isinstance(node, ast.Comparison):
            walk_expression(node.left)
            walk_expression(node.right)
        elif isinstance(node, (ast.And, ast.Or)):
            walk_predicate(node.left)
            walk_predicate(node.right)
        elif isinstance(node, ast.Not):
            walk_predicate(node.operand)
        elif isinstance(node, ast.InQuery):
            walk_query(node.query)
        elif isinstance(node, ast.ExistsQuery):
            walk_query(node.query)
        elif isinstance(node, ast.IsNull):
            walk_expression(node.operand)
        elif isinstance(node, ast.InValues):
            walk_expression(node.operand)

    walk_query(query)
    return names


def output_attributes(
    query: ast.Query,
    schema: "RelationalSchema",
    ctes: dict[str, tuple[str, ...]] | None = None,
) -> tuple[str, ...] | None:
    """The output attribute tuple of *query*, or ``None`` when it cannot be
    determined statically (unknown relation, heterogeneous union, ...).

    Mirrors the reference evaluator's naming exactly: scans expose the
    relation's declared attributes, ``ρ_T`` prefixes and flattens them, and
    projections/aggregations expose their column aliases.  The join planner
    and the column pruner both rely on this to reason about scopes without
    evaluating anything.
    """
    ctes = ctes or {}
    if isinstance(query, ast.Relation):
        if query.name in ctes:
            return ctes[query.name]
        try:
            return tuple(schema.relation(query.name).attributes)
        except Exception:
            return None
    if isinstance(query, ast.Projection):
        return tuple(column.alias for column in query.columns)
    if isinstance(query, (ast.Selection, ast.OrderBy)):
        return output_attributes(query.query, schema, ctes)
    if isinstance(query, ast.Renaming):
        inner = output_attributes(query.query, schema, ctes)
        if inner is None:
            return None
        return tuple(
            f"{query.name}.{ast.flatten_attribute(a)}" for a in inner
        )
    if isinstance(query, ast.Join):
        left = output_attributes(query.left, schema, ctes)
        right = output_attributes(query.right, schema, ctes)
        if left is None or right is None:
            return None
        return left + right
    if isinstance(query, ast.UnionOp):
        return output_attributes(query.left, schema, ctes)
    if isinstance(query, ast.GroupBy):
        return tuple(column.alias for column in query.columns)
    if isinstance(query, ast.WithQuery):
        definition = output_attributes(query.definition, schema, ctes)
        if definition is None:
            return None
        extended = dict(ctes)
        extended[query.name] = definition
        return output_attributes(query.body, schema, extended)
    if isinstance(query, ast.RecursiveQuery):
        extended = dict(ctes)
        extended[query.name] = query.columns
        return output_attributes(query.body, schema, extended)
    return None


def join_count(query: ast.Query) -> int:
    """Number of join nodes anywhere in *query* (the "multi-hop" metric)."""
    return sum(1 for node in iter_nodes(query) if isinstance(node, ast.Join))


def uses_aggregation(query: ast.Query) -> bool:
    """Whether any GroupBy or aggregate expression appears in *query*."""
    return _any_node(query, lambda n: isinstance(n, (ast.GroupBy, ast.Aggregate)))


def uses_outer_join(query: ast.Query) -> bool:
    """Whether any LEFT/RIGHT/FULL join appears in *query*."""
    return _any_node(
        query,
        lambda n: isinstance(n, ast.Join)
        and n.kind in (ast.JoinKind.LEFT, ast.JoinKind.RIGHT, ast.JoinKind.FULL),
    )


def uses_order_by(query: ast.Query) -> bool:
    return _any_node(query, lambda n: isinstance(n, ast.OrderBy))


def uses_recursion(query: ast.Query) -> bool:
    """Whether any recursive CTE appears in *query*."""
    return _any_node(query, lambda n: isinstance(n, ast.RecursiveQuery))


def _any_node(root: object, test) -> bool:
    for node in iter_nodes(root):
        if test(node):
            return True
    return False


def iter_nodes(node: object):
    """Depth-first iteration over every AST node reachable from *node*."""
    yield node
    if isinstance(node, ast.Projection):
        yield from iter_nodes(node.query)
        for column in node.columns:
            yield from iter_nodes(column.expression)
    elif isinstance(node, ast.Selection):
        yield from iter_nodes(node.query)
        yield from iter_nodes(node.predicate)
    elif isinstance(node, ast.Renaming):
        yield from iter_nodes(node.query)
    elif isinstance(node, ast.Join):
        yield from iter_nodes(node.left)
        yield from iter_nodes(node.right)
        yield from iter_nodes(node.predicate)
    elif isinstance(node, ast.UnionOp):
        yield from iter_nodes(node.left)
        yield from iter_nodes(node.right)
    elif isinstance(node, ast.GroupBy):
        yield from iter_nodes(node.query)
        for key in node.keys:
            yield from iter_nodes(key)
        for column in node.columns:
            yield from iter_nodes(column.expression)
        yield from iter_nodes(node.having)
    elif isinstance(node, ast.WithQuery):
        yield from iter_nodes(node.definition)
        yield from iter_nodes(node.body)
    elif isinstance(node, ast.RecursiveQuery):
        yield from iter_nodes(node.base)
        yield from iter_nodes(node.step)
        yield from iter_nodes(node.body)
    elif isinstance(node, ast.OrderBy):
        yield from iter_nodes(node.query)
        for key in node.keys:
            yield from iter_nodes(key)
    elif isinstance(node, ast.BinaryOp):
        yield from iter_nodes(node.left)
        yield from iter_nodes(node.right)
    elif isinstance(node, ast.CastPredicate):
        yield from iter_nodes(node.predicate)
    elif isinstance(node, ast.Aggregate):
        if node.argument is not None:
            yield from iter_nodes(node.argument)
    elif isinstance(node, ast.Comparison):
        yield from iter_nodes(node.left)
        yield from iter_nodes(node.right)
    elif isinstance(node, (ast.And, ast.Or)):
        yield from iter_nodes(node.left)
        yield from iter_nodes(node.right)
    elif isinstance(node, ast.Not):
        yield from iter_nodes(node.operand)
    elif isinstance(node, ast.IsNull):
        yield from iter_nodes(node.operand)
    elif isinstance(node, ast.InValues):
        yield from iter_nodes(node.operand)
    elif isinstance(node, ast.InQuery):
        for operand in node.operands:
            yield from iter_nodes(operand)
        yield from iter_nodes(node.query)
    elif isinstance(node, ast.ExistsQuery):
        yield from iter_nodes(node.query)
