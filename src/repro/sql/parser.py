"""Recursive-descent parser for the Featherweight SQL surface syntax.

Accepted shape (paper Figure 10's fragment rendered as standard SQL)::

    SELECT c2.CID, Count(*) FROM Cs AS c2, Pa AS p2, Sp AS s2
    WHERE s2.PID = p2.PID AND p2.CSID = c2.CSID AND s2.SID IN (
        SELECT s1.SID FROM Cs AS c1, Pa AS p1, Sp AS s1
        WHERE s1.PID = p1.PID AND p1.CSID = c1.CSID AND c1.CID = 1)
    GROUP BY CID

Supported: SELECT [DISTINCT], FROM with aliases, comma/CROSS/INNER/LEFT/
RIGHT/FULL joins, WHERE, GROUP BY/HAVING, ORDER BY/LIMIT, UNION [ALL],
WITH-CTEs, scalar subqueries in IN/EXISTS, and FROM-subqueries.

The parser lowers directly into the relational algebra of
:mod:`repro.sql.ast`: every FROM item is wrapped in a renaming ``ρ_alias`` so
attribute references are always qualified, comma-separated items become
cross joins, and ``WHERE`` becomes a selection.
"""

from __future__ import annotations

from repro.common.errors import ParseError
from repro.common.values import NULL, Value
from repro.cypher.lexer import Token, TokenStream, number_value, string_value, tokenize
from repro.sql import ast

_AGGREGATES = {"COUNT": "Count", "SUM": "Sum", "AVG": "Avg", "MIN": "Min", "MAX": "Max"}

_KEYWORDS = {
    "SELECT", "DISTINCT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "ORDER",
    "LIMIT", "AS", "ON", "JOIN", "INNER", "LEFT", "RIGHT", "FULL", "OUTER",
    "CROSS", "UNION", "ALL", "AND", "OR", "NOT", "IN", "IS", "NULL", "TRUE",
    "FALSE", "EXISTS", "WITH", "ASC", "DESC",
}


def parse_sql(source: str) -> ast.Query:
    """Parse SQL text into a Featherweight SQL algebra tree."""
    stream = TokenStream(tokenize(source))
    parser = _Parser(stream)
    query = parser.parse_query()
    if not stream.at_end():
        raise stream.error(f"unexpected trailing input {stream.peek().text!r}")
    return query


class _Parser:
    def __init__(self, stream: TokenStream) -> None:
        self.stream = stream

    # -- queries -----------------------------------------------------------

    def parse_query(self) -> ast.Query:
        if self.stream.at_keyword("WITH"):
            return self._parse_with_query()
        return self._parse_union_query()

    def _parse_with_query(self) -> ast.Query:
        self.stream.expect_keyword("WITH")
        bindings: list[tuple[str, ast.Query]] = []
        while True:
            name = self.stream.expect_ident("CTE name").text
            self.stream.expect_keyword("AS")
            self.stream.expect_op("(")
            definition = self.parse_query()
            self.stream.expect_op(")")
            bindings.append((name, definition))
            if not self.stream.take_op(","):
                break
        body = self._parse_union_query()
        for name, definition in reversed(bindings):
            body = ast.WithQuery(name, definition, body)
        return body

    def _parse_union_query(self) -> ast.Query:
        query = self._parse_select()
        while self.stream.at_keyword("UNION"):
            self.stream.advance()
            bag = self.stream.take_keyword("ALL")
            right = self._parse_select()
            query = ast.UnionOp(query, right, all=bag)
        return query

    # -- SELECT ------------------------------------------------------------

    def _parse_select(self) -> ast.Query:
        self.stream.expect_keyword("SELECT")
        distinct = self.stream.take_keyword("DISTINCT")
        star = False
        items: list[tuple[ast.Expression, str]] = []
        if self.stream.take_op("*"):
            star = True
        else:
            while True:
                expression = self._parse_expression()
                name = _default_name(expression)
                if self.stream.take_keyword("AS"):
                    name = self.stream.expect_ident("output name").text
                elif (
                    self.stream.peek().kind == "ident"
                    and self.stream.peek().text.upper() not in _KEYWORDS
                ):
                    name = self.stream.advance().text
                items.append((expression, name))
                if not self.stream.take_op(","):
                    break
        source = self._parse_from()
        if self.stream.take_keyword("WHERE"):
            source = ast.Selection(source, self._parse_predicate())
        group_keys: tuple[ast.Expression, ...] | None = None
        having: ast.Predicate = ast.TRUE
        if self.stream.take_keyword("GROUP"):
            self.stream.expect_keyword("BY")
            keys = [self._parse_expression()]
            while self.stream.take_op(","):
                keys.append(self._parse_expression())
            group_keys = tuple(keys)
            if self.stream.take_keyword("HAVING"):
                having = self._parse_predicate()
        query = self._shape_output(source, star, items, distinct, group_keys, having)
        query = self._parse_order_limit(query, items)
        return query

    def _shape_output(
        self,
        source: ast.Query,
        star: bool,
        items: list[tuple[ast.Expression, str]],
        distinct: bool,
        group_keys: tuple[ast.Expression, ...] | None,
        having: ast.Predicate,
    ) -> ast.Query:
        if star:
            if group_keys is not None:
                raise self.stream.error("SELECT * with GROUP BY is not supported")
            if distinct:
                raise self.stream.error("SELECT DISTINCT * is not supported; name columns")
            return source
        has_aggregate = any(_expression_has_aggregate(e) for e, _ in items)
        columns = tuple(ast.OutputColumn(name, expr) for expr, name in items)
        if group_keys is None and not has_aggregate:
            return ast.Projection(source, columns, distinct=distinct)
        keys = group_keys
        if keys is None:
            keys = ()
        elif not group_keys and has_aggregate:
            keys = ()
        grouped: ast.Query = ast.GroupBy(source, tuple(keys), columns, having)
        if distinct:
            passthrough = tuple(
                ast.OutputColumn(c.alias, ast.AttributeRef(c.alias)) for c in columns
            )
            grouped = ast.Projection(grouped, passthrough, distinct=True)
        return grouped

    def _parse_order_limit(
        self, query: ast.Query, items: list[tuple[ast.Expression, str]]
    ) -> ast.Query:
        keys: list[ast.Expression] = []
        ascending: list[bool] = []
        if self.stream.take_keyword("ORDER"):
            self.stream.expect_keyword("BY")
            while True:
                expression = self._parse_expression()
                # Prefer the output alias when the key matches a SELECT item.
                for item_expr, name in items:
                    if item_expr == expression:
                        expression = ast.AttributeRef(name)
                        break
                keys.append(expression)
                if self.stream.take_keyword("DESC"):
                    ascending.append(False)
                else:
                    self.stream.take_keyword("ASC")
                    ascending.append(True)
                if not self.stream.take_op(","):
                    break
        limit = None
        if self.stream.take_keyword("LIMIT"):
            token = self.stream.peek()
            if token.kind != "number":
                raise self.stream.error("LIMIT needs a number")
            self.stream.advance()
            limit = int(number_value(token))
        if keys or limit is not None:
            return ast.OrderBy(query, tuple(keys), tuple(ascending), limit)
        return query

    # -- FROM ----------------------------------------------------------------

    def _parse_from(self) -> ast.Query:
        self.stream.expect_keyword("FROM")
        query = self._parse_from_item()
        while True:
            if self.stream.take_op(","):
                right = self._parse_from_item()
                query = ast.Join(ast.JoinKind.CROSS, query, right, ast.TRUE)
                continue
            kind = self._peek_join_kind()
            if kind is None:
                break
            right = self._parse_from_item()
            if kind is ast.JoinKind.CROSS:
                query = ast.Join(ast.JoinKind.CROSS, query, right, ast.TRUE)
            else:
                if self.stream.take_keyword("ON"):
                    predicate = self._parse_predicate()
                else:
                    predicate = ast.TRUE
                query = ast.Join(kind, query, right, predicate)
        return query

    def _peek_join_kind(self) -> ast.JoinKind | None:
        token = self.stream.peek()
        if token.is_keyword("JOIN"):
            self.stream.advance()
            return ast.JoinKind.INNER
        if token.is_keyword("INNER"):
            self.stream.advance()
            self.stream.expect_keyword("JOIN")
            return ast.JoinKind.INNER
        if token.is_keyword("LEFT"):
            self.stream.advance()
            self.stream.take_keyword("OUTER")
            self.stream.expect_keyword("JOIN")
            return ast.JoinKind.LEFT
        if token.is_keyword("RIGHT"):
            self.stream.advance()
            self.stream.take_keyword("OUTER")
            self.stream.expect_keyword("JOIN")
            return ast.JoinKind.RIGHT
        if token.is_keyword("FULL"):
            self.stream.advance()
            self.stream.take_keyword("OUTER")
            self.stream.expect_keyword("JOIN")
            return ast.JoinKind.FULL
        if token.is_keyword("CROSS"):
            self.stream.advance()
            self.stream.expect_keyword("JOIN")
            return ast.JoinKind.CROSS
        return None

    def _parse_from_item(self) -> ast.Query:
        if self.stream.take_op("("):
            subquery = self.parse_query()
            self.stream.expect_op(")")
            self.stream.take_keyword("AS")
            alias = self.stream.expect_ident("subquery alias").text
            return ast.Renaming(alias, subquery)
        name = self.stream.expect_ident("table name").text
        alias = name
        if self.stream.take_keyword("AS"):
            alias = self.stream.expect_ident("table alias").text
        elif (
            self.stream.peek().kind == "ident"
            and self.stream.peek().text.upper() not in _KEYWORDS
        ):
            alias = self.stream.advance().text
        return ast.Renaming(alias, ast.Relation(name))

    # -- predicates -----------------------------------------------------------

    def _parse_predicate(self) -> ast.Predicate:
        return self._parse_or()

    def _parse_or(self) -> ast.Predicate:
        left = self._parse_and()
        while self.stream.take_keyword("OR"):
            left = ast.Or(left, self._parse_and())
        return left

    def _parse_and(self) -> ast.Predicate:
        left = self._parse_not()
        while self.stream.take_keyword("AND"):
            left = ast.And(left, self._parse_not())
        return left

    def _parse_not(self) -> ast.Predicate:
        if self.stream.take_keyword("NOT"):
            return ast.Not(self._parse_not())
        return self._parse_atom_predicate()

    def _parse_atom_predicate(self) -> ast.Predicate:
        token = self.stream.peek()
        if token.is_keyword("EXISTS"):
            self.stream.advance()
            self.stream.expect_op("(")
            subquery = self.parse_query()
            self.stream.expect_op(")")
            return ast.ExistsQuery(subquery)
        if token.is_keyword("TRUE"):
            self.stream.advance()
            return ast.TRUE
        if token.is_keyword("FALSE"):
            self.stream.advance()
            return ast.FALSE
        if token.is_op("(") and self._parenthesised_predicate_ahead():
            self.stream.expect_op("(")
            inner = self._parse_predicate()
            self.stream.expect_op(")")
            return inner
        left = self._parse_expression()
        return self._parse_predicate_tail(left)

    def _parse_predicate_tail(self, left: ast.Expression) -> ast.Predicate:
        token = self.stream.peek()
        if token.is_op("=", "<>", "!=", "<", "<=", ">", ">="):
            self.stream.advance()
            op = "<>" if token.text == "!=" else token.text
            right = self._parse_expression()
            return ast.Comparison(op, left, right)
        if token.is_keyword("IS"):
            self.stream.advance()
            negated = self.stream.take_keyword("NOT")
            self.stream.expect_keyword("NULL")
            return ast.IsNull(left, negated)
        if token.is_keyword("IN"):
            self.stream.advance()
            return self._parse_in_tail(left, negated=False)
        if token.is_keyword("NOT"):
            self.stream.advance()
            self.stream.expect_keyword("IN")
            return self._parse_in_tail(left, negated=True)
        raise self.stream.error("expected a comparison, IS NULL, IN, or EXISTS")

    def _parse_in_tail(self, left: ast.Expression, negated: bool) -> ast.Predicate:
        self.stream.expect_op("(")
        if self.stream.at_keyword("SELECT", "WITH"):
            subquery = self.parse_query()
            self.stream.expect_op(")")
            return ast.InQuery((left,), subquery, negated)
        values = [self._parse_literal_value()]
        while self.stream.take_op(","):
            values.append(self._parse_literal_value())
        self.stream.expect_op(")")
        membership: ast.Predicate = ast.InValues(left, tuple(values))
        return ast.Not(membership) if negated else membership

    def _parenthesised_predicate_ahead(self) -> bool:
        depth = 0
        offset = 0
        while True:
            token = self.stream.peek(offset)
            if token.kind == "eof":
                return False
            if token.is_op("("):
                depth += 1
            elif token.is_op(")"):
                depth -= 1
                if depth == 0:
                    return False
            elif depth == 1 and token.is_keyword("SELECT", "WITH"):
                return False  # a subquery, not a predicate group
            elif depth == 1 and (
                token.is_keyword("AND", "OR", "NOT", "IN", "IS", "EXISTS")
                or token.is_op("=", "<>", "!=", "<", "<=", ">", ">=")
            ):
                return True
            offset += 1

    # -- expressions ---------------------------------------------------------

    def _parse_expression(self) -> ast.Expression:
        return self._parse_additive()

    def _parse_additive(self) -> ast.Expression:
        left = self._parse_multiplicative()
        while self.stream.at_op("+", "-"):
            op = self.stream.advance().text
            left = ast.BinaryOp(op, left, self._parse_multiplicative())
        return left

    def _parse_multiplicative(self) -> ast.Expression:
        left = self._parse_unary()
        while self.stream.at_op("*", "/", "%"):
            op = self.stream.advance().text
            left = ast.BinaryOp(op, left, self._parse_unary())
        return left

    def _parse_unary(self) -> ast.Expression:
        if self.stream.at_op("-"):
            self.stream.advance()
            operand = self._parse_unary()
            if isinstance(operand, ast.Literal) and isinstance(
                operand.value, (int, float)
            ):
                return ast.Literal(-operand.value)
            return ast.BinaryOp("-", ast.Literal(0), operand)
        return self._parse_primary()

    def _parse_primary(self) -> ast.Expression:
        token = self.stream.peek()
        if token.kind == "number":
            self.stream.advance()
            return ast.Literal(number_value(token))
        if token.kind == "string":
            self.stream.advance()
            return ast.Literal(string_value(token))
        if token.is_keyword("NULL"):
            self.stream.advance()
            return ast.Literal(NULL)
        if token.is_keyword("TRUE"):
            self.stream.advance()
            return ast.Literal(True)
        if token.is_keyword("FALSE"):
            self.stream.advance()
            return ast.Literal(False)
        if token.kind == "ident" and token.text.upper() in _AGGREGATES:
            if self.stream.peek(1).is_op("("):
                return self._parse_aggregate()
        if token.kind == "ident":
            self.stream.advance()
            name = token.text
            if self.stream.take_op("."):
                attribute = self.stream.expect_ident("attribute name").text
                return ast.AttributeRef(f"{name}.{attribute}")
            return ast.AttributeRef(name)
        if token.is_op("("):
            self.stream.advance()
            inner = self._parse_expression()
            self.stream.expect_op(")")
            return inner
        raise self.stream.error(f"expected an expression, found {token.text!r}")

    def _parse_aggregate(self) -> ast.Expression:
        token = self.stream.advance()
        function = _AGGREGATES[token.text.upper()]
        self.stream.expect_op("(")
        distinct = self.stream.take_keyword("DISTINCT")
        if self.stream.take_op("*"):
            self.stream.expect_op(")")
            return ast.Aggregate("Count", None, distinct)
        argument = self._parse_expression()
        self.stream.expect_op(")")
        return ast.Aggregate(function, argument, distinct)

    def _parse_literal_value(self) -> Value:
        token = self.stream.peek()
        if token.kind == "number":
            self.stream.advance()
            return number_value(token)
        if token.kind == "string":
            self.stream.advance()
            return string_value(token)
        if token.is_keyword("TRUE"):
            self.stream.advance()
            return True
        if token.is_keyword("FALSE"):
            self.stream.advance()
            return False
        if token.is_keyword("NULL"):
            self.stream.advance()
            return NULL
        if token.is_op("-"):
            self.stream.advance()
            number = self.stream.peek()
            if number.kind != "number":
                raise self.stream.error("expected a number after '-'")
            self.stream.advance()
            return -number_value(number)
        raise self.stream.error(f"expected a literal, found {token.text!r}")


def _default_name(expression: ast.Expression) -> str:
    if isinstance(expression, ast.AttributeRef):
        return expression.local_name
    return str(expression)


def _expression_has_aggregate(expression: ast.Expression) -> bool:
    if isinstance(expression, ast.Aggregate):
        return True
    if isinstance(expression, ast.BinaryOp):
        return _expression_has_aggregate(expression.left) or _expression_has_aggregate(
            expression.right
        )
    return False
