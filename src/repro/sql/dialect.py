"""SQL dialects: the engine-specific surface of SQL text rendering.

:mod:`repro.sql.pretty` lowers one Featherweight SQL AST to text; what
varies between execution engines is not the algebra but the spelling —
identifier quoting, boolean/NULL literals, DDL column types, and the
EXPLAIN incantation.  A :class:`SqlDialect` captures exactly those knobs so
one rendered algebra runs on every registered backend
(:mod:`repro.backends`).

Built-in dialects:

* ``sqlite``  — double-quoted identifiers, booleans as ``1``/``0``,
  untyped (dynamically-typed) DDL.
* ``duckdb``  — double-quoted identifiers, ``TRUE``/``FALSE``, typed DDL
  (defaults to ``VARCHAR`` when no type hint is available).
* ``ansi``    — standards-flavoured rendering for display/golden tests.
* ``mysql``   — backtick-quoted identifiers (rendering only; no backend
  ships with the repro, but the dialect demonstrates that quoting is a
  dialect property, not a renderer constant).

New engines register a dialect with :func:`register_dialect` and look it up
with :func:`dialect_for`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import SemanticsError
from repro.common.values import is_null


@dataclass(frozen=True)
class SqlDialect:
    """Engine-specific rendering parameters for one SQL dialect."""

    name: str
    #: Identifier quote character; escaped by doubling inside identifiers.
    quote_char: str = '"'
    #: Boolean *value* literals (expression position).
    true_literal: str = "1"
    false_literal: str = "0"
    #: Boolean *predicate* literals (WHERE/ON position).
    true_predicate: str = "1 = 1"
    false_predicate: str = "1 = 0"
    null_literal: str = "NULL"
    #: Whether CREATE TABLE requires a type per column.
    typed_ddl: bool = False
    #: Fallback DDL type when the engine demands one and no hint exists.
    default_column_type: str = "VARCHAR"
    integer_type: str = "INTEGER"
    real_type: str = "DOUBLE"
    text_type: str = "VARCHAR"
    #: Statement prefix that asks the engine for a query plan.
    explain_prefix: str = "EXPLAIN"
    #: Whether the engine treats backslash as an escape inside string
    #: literals (MySQL's default sql_mode), requiring it to be doubled.
    escape_backslashes: bool = False
    #: Name of the engine's implicit row-address pseudo-column (``rowid``
    #: on SQLite and DuckDB), or ``None`` when the engine has no such
    #: column.  Partition-parallel scans slice base tables by disjoint
    #: ranges of this column (:mod:`repro.backends.executor`); dialects
    #: without one refuse the parallel plan and stay serial.
    rowid_column: str | None = None

    # -- identifiers -------------------------------------------------------

    def quote(self, identifier: str) -> str:
        """Quote *identifier*, escaping embedded quote characters."""
        escaped = identifier.replace(self.quote_char, self.quote_char * 2)
        return f"{self.quote_char}{escaped}{self.quote_char}"

    # -- literals ----------------------------------------------------------

    def literal(self, value) -> str:
        """Render a constant in expression position."""
        if is_null(value):
            return self.null_literal
        if isinstance(value, bool):
            return self.true_literal if value else self.false_literal
        if isinstance(value, str):
            escaped = value
            if self.escape_backslashes:
                escaped = escaped.replace("\\", "\\\\")
            escaped = escaped.replace("'", "''")
            return f"'{escaped}'"
        if isinstance(value, (int, float)):
            return repr(value)
        raise SemanticsError(f"cannot render literal {value!r} ({type(value).__name__})")

    def boolean(self, value: bool) -> str:
        """Render a constant in predicate position."""
        return self.true_predicate if value else self.false_predicate

    # -- DDL ---------------------------------------------------------------

    def type_for_value(self, value) -> str:
        """The DDL type a sample *value* suggests for its column."""
        if isinstance(value, bool) or isinstance(value, int):
            return self.integer_type
        if isinstance(value, float):
            return self.real_type
        if isinstance(value, str):
            return self.text_type
        return self.default_column_type

    def ddl_column(self, attribute: str, type_hint: str | None = None) -> str:
        """One column declaration for CREATE TABLE.

        Untyped dialects (SQLite) omit the type unless a hint is given;
        typed dialects fall back to :attr:`default_column_type`.
        """
        if type_hint is None:
            type_hint = self.default_column_type if self.typed_ddl else ""
        declaration = self.quote(attribute)
        return f"{declaration} {type_hint}" if type_hint else declaration


SQLITE = SqlDialect(
    name="sqlite",
    explain_prefix="EXPLAIN QUERY PLAN",
    rowid_column="rowid",
)

DUCKDB = SqlDialect(
    name="duckdb",
    true_literal="TRUE",
    false_literal="FALSE",
    true_predicate="TRUE",
    false_predicate="FALSE",
    typed_ddl=True,
    rowid_column="rowid",
)

ANSI = SqlDialect(
    name="ansi",
    true_literal="TRUE",
    false_literal="FALSE",
    true_predicate="TRUE",
    false_predicate="FALSE",
    typed_ddl=True,
    real_type="DOUBLE PRECISION",
)

MYSQL = SqlDialect(
    name="mysql",
    quote_char="`",
    true_literal="TRUE",
    false_literal="FALSE",
    true_predicate="TRUE",
    false_predicate="FALSE",
    typed_ddl=True,
    text_type="TEXT",
    escape_backslashes=True,
)

_DIALECTS: dict[str, SqlDialect] = {}


def register_dialect(dialect: SqlDialect) -> SqlDialect:
    """Make *dialect* resolvable through :func:`dialect_for`."""
    _DIALECTS[dialect.name] = dialect
    return dialect


for _dialect in (SQLITE, DUCKDB, ANSI, MYSQL):
    register_dialect(_dialect)


def dialect_for(name: "str | SqlDialect") -> SqlDialect:
    """Resolve a dialect by name (idempotent on dialect instances)."""
    if isinstance(name, SqlDialect):
        return name
    try:
        return _DIALECTS[name]
    except KeyError:
        known = ", ".join(sorted(_DIALECTS))
        raise SemanticsError(f"unknown SQL dialect {name!r} (known: {known})") from None


def registered_dialects() -> tuple[str, ...]:
    """Names of every registered dialect, sorted."""
    return tuple(sorted(_DIALECTS))
