"""Join-aware cost-based planning over Featherweight SQL algebra.

The transpiler leaves every relationship traversal as a selection over a
cross-product tree (``σ_φ(R1 × R2 × ...)``); the rule rewrites in
:mod:`repro.sql.optimize` collapse the nesting but keep that shape.  This
module implements the optimizer's *level-2* passes on top:

* **Join-graph planning** (:func:`plan_joins`) — flatten a maximal
  CROSS/INNER join region into an n-ary join graph, decompose conjunctive
  predicates, push single-table conjuncts into their scan, turn two-table
  equality conjuncts into equi-join edges, and rebuild a left-deep join
  tree in greedy cost order (smallest estimated intermediate first).
* **Cardinality estimation** (:class:`CardinalityEstimator`) — row counts
  and per-column distinct counts from :mod:`repro.sql.stats` when
  available, textbook Selinger selectivity defaults when not.
* **Dead-column pruning** (:func:`prune_columns`) — top-down removal of
  projection columns no ancestor references, so intermediate results only
  marshal attributes the query actually consumes.
* **Common-subplan elimination** (:func:`common_subplans`) — repeated
  self-contained subtrees are hash-consed into a ``WithQuery`` binding so
  they are evaluated once (the renderer emits a real ``WITH`` CTE).
* **Recursion unrolling** (:func:`expand_recursions`) — a variable-length
  traversal fixpoint (a :class:`~repro.sql.ast.RecursiveQuery` carrying
  :class:`~repro.sql.ast.ReachInfo`) whose upper hop bound is small is
  rewritten into a UNION of k-hop join chains over the same one-hop CTE,
  which engines can reorder and index freely; the choice is cost-based —
  estimated chain growth (edge rows × per-hop fan-out from NDV statistics)
  must stay under :data:`UNROLL_ROW_LIMIT`, else the recursive CTE stays.

Every pass is semantics-preserving under the reference bag semantics; the
benchmark harness cross-validates level-2 plans against the reference
evaluator over the whole 410-benchmark suite.  Passes that cannot prove a
rewrite safe (duplicate attribute names, unresolvable references,
correlated subqueries in the wrong place) leave the tree untouched.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field

from repro.relational.schema import RelationalSchema
from repro.sql import ast
from repro.sql.analysis import ast_size, output_attributes
from repro.sql.stats import DatabaseStats

#: Selinger-style fallbacks used when statistics are absent.
DEFAULT_ROW_COUNT = 1000.0
EQUALITY_SELECTIVITY = 0.1
RANGE_SELECTIVITY = 1.0 / 3.0
NOT_EQUAL_SELECTIVITY = 0.9
NULL_SELECTIVITY = 0.1
SUBQUERY_SELECTIVITY = 0.5
DEFAULT_SELECTIVITY = 0.25

#: Smallest subtree worth hoisting into a CTE (AST nodes).
CSE_MIN_SIZE = 9

#: Bounds for unrolling a bounded traversal into k-hop join chains.
UNROLL_MAX_HOPS = 4
UNROLL_ROW_LIMIT = 250_000.0


# ---------------------------------------------------------------------------
# Plan reporting (the optimizer's introspection seam)
# ---------------------------------------------------------------------------


@dataclass
class TraversalPlan:
    """One recursive-vs-unrolled decision for a variable-length traversal."""

    name: str
    choice: str  # "recursive" | "unrolled"
    min_hops: int
    max_hops: int | None
    estimated_rows: float | None
    reason: str

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "choice": self.choice,
            "min_hops": self.min_hops,
            "max_hops": self.max_hops,
            "estimated_rows": self.estimated_rows,
            "reason": self.reason,
        }


@dataclass
class JoinPlan:
    """One join region's chosen order and predicate placement."""

    order: tuple[str, ...]
    pushed_predicates: int
    join_edges: int

    def to_dict(self) -> dict:
        return {
            "order": list(self.order),
            "pushed_predicates": self.pushed_predicates,
            "join_edges": self.join_edges,
        }


@dataclass
class PlanReport:
    """What the optimizer decided, and why — travels with the prepared query.

    Filled in by :func:`~repro.sql.optimize.optimize` when a report object
    is passed; cached alongside the plan it describes
    (:class:`~repro.backends.service.PreparedQuery`), so ``repro explain``
    shows the planner's reasoning even when the trace itself was all cache
    hits.  ``estimated_rows`` is the optimizer's final cardinality
    estimate — the ``execute`` span pairs it with the *actual* row count,
    which is the feedback seam runtime re-planning will consume.
    """

    level: int = 0
    traversals: list[TraversalPlan] = field(default_factory=list)
    joins: list[JoinPlan] = field(default_factory=list)
    cte_names: list[str] = field(default_factory=list)
    estimated_rows: float | None = None
    #: Scatter-gather classification, filled in by the sharding coordinator
    #: (:mod:`repro.sql.fragment`): kind (shard_local / merge_aggregable /
    #: non_fragmentable), the reason, and the merge rules — so ``repro
    #: explain`` shows the scatter plan.  ``None`` until a sharded service
    #: prepares the query.
    sharding: dict | None = None
    #: Adaptive-execution decision that produced this plan, filled in by
    #: the serving layer when estimate-vs-actual feedback triggered a
    #: re-plan (:meth:`repro.backends.service.GraphitiService
    #: .observe_execution`): epoch, reason, divergence, and the applied
    #: corrections — so ``repro explain`` shows *why* the plan changed.
    #: ``None`` for first-epoch plans.
    feedback: dict | None = None
    #: Intra-query parallelism decision, filled in by the serving layer's
    #: partition gate (:mod:`repro.backends.executor`): whether the scan
    #: was split, the chosen degree, the partitioned relation, and the
    #: reason when it stays serial — so ``repro explain`` shows the cost
    #: decision either way.  ``None`` until a parallel-enabled service
    #: prepares the query.
    parallelism: dict | None = None

    @property
    def traversal_choice(self) -> str | None:
        """The single headline choice: ``recursive``/``unrolled``/mixed."""
        choices = {traversal.choice for traversal in self.traversals}
        if not choices:
            return None
        return choices.pop() if len(choices) == 1 else "mixed"

    def to_dict(self) -> dict:
        return {
            "level": self.level,
            "traversals": [traversal.to_dict() for traversal in self.traversals],
            "joins": [join.to_dict() for join in self.joins],
            "cte_names": list(self.cte_names),
            "estimated_rows": self.estimated_rows,
            "traversal_choice": self.traversal_choice,
            "sharding": self.sharding,
            "feedback": self.feedback,
            "parallelism": self.parallelism,
        }


# ---------------------------------------------------------------------------
# Cardinality estimation
# ---------------------------------------------------------------------------


@dataclass
class CardinalityEstimator:
    """Estimates result sizes from table statistics (or defaults).

    *provenance* maps — attribute name → ``(relation, column)`` — let the
    estimator look up distinct-value counts for renamed attributes like
    ``n.uid`` (scan of ``USER`` under ``ρ_n``).
    """

    schema: RelationalSchema
    stats: DatabaseStats | None = None
    #: Multiplicative correction applied to every base-table row count —
    #: the adaptive-execution layer sets this from observed actual rows
    #: when the stats digest did not change but estimates keep diverging.
    row_scale: float = 1.0

    # -- relation-level statistics ------------------------------------------

    def base_rows(self, relation: str) -> float:
        if self.stats is not None and relation in self.stats:
            rows = float(max(self.stats[relation].row_count, 1))
        else:
            rows = DEFAULT_ROW_COUNT
        return max(rows * self.row_scale, 1.0)

    def distinct_values(
        self, name: str, provenance: dict[str, tuple[str, str]]
    ) -> float | None:
        """NDV of the attribute *name* resolves to, or ``None`` if unknown."""
        if self.stats is None:
            return None
        source = provenance.get(name)
        if source is None:
            matches = {
                provenance[a]
                for a in provenance
                if a.rsplit(".", 1)[-1] == name
            }
            if len(matches) != 1:
                return None
            source = next(iter(matches))
        relation, column = source
        table = self.stats.get(relation)
        if table is None:
            return None
        count = table.distinct_of(column)
        return float(max(count, 1)) if count is not None else None

    # -- provenance ---------------------------------------------------------

    def provenance(self, query: ast.Query) -> dict[str, tuple[str, str]]:
        """Best-effort attribute → (relation, column) map for *query*."""
        if isinstance(query, ast.Relation):
            try:
                relation = self.schema.relation(query.name)
            except Exception:
                return {}
            return {a: (query.name, a) for a in relation.attributes}
        if isinstance(query, (ast.Selection, ast.OrderBy)):
            return self.provenance(query.query)
        if isinstance(query, ast.Renaming):
            inner_attrs = output_attributes(query.query, self.schema)
            inner_prov = self.provenance(query.query)
            if inner_attrs is None:
                return {}
            return {
                f"{query.name}.{ast.flatten_attribute(a)}": inner_prov[a]
                for a in inner_attrs
                if a in inner_prov
            }
        if isinstance(query, ast.Join):
            merged = self.provenance(query.left)
            merged.update(self.provenance(query.right))
            return merged
        if isinstance(query, (ast.Projection, ast.GroupBy)):
            inner = self.provenance(query.query)
            out: dict[str, tuple[str, str]] = {}
            for column in query.columns:
                expression = column.expression
                if isinstance(expression, ast.AttributeRef):
                    source = inner.get(expression.name)
                    if source is None:
                        locals_ = [
                            a
                            for a in inner
                            if a.rsplit(".", 1)[-1] == expression.name
                        ]
                        if len(locals_) == 1:
                            source = inner[locals_[0]]
                    if source is not None:
                        out[column.alias] = source
            return out
        if isinstance(query, ast.WithQuery):
            return self.provenance(query.body)
        return {}

    # -- cardinalities ------------------------------------------------------

    def cardinality(self, query: ast.Query) -> float:
        """Estimated output rows of *query*, clamped to sane floors.

        Degenerate inputs (empty tables, NDV-0 columns, ``LIMIT 0``) must
        never produce 0- or NaN-shaped estimates: a zero-cost subtree makes
        every join order containing it tie at zero and the greedy
        reorderer's choice becomes arbitrary.
        """
        estimate = self._cardinality(query)
        if math.isnan(estimate):
            return DEFAULT_ROW_COUNT
        return max(estimate, 1.0)

    def _cardinality(self, query: ast.Query) -> float:
        if isinstance(query, ast.Relation):
            return self.base_rows(query.name)
        if isinstance(query, ast.Selection):
            inner = self.cardinality(query.query)
            return max(
                inner * self.selectivity(query.predicate, self.provenance(query.query)),
                1.0,
            )
        if isinstance(query, ast.Projection):
            inner = self.cardinality(query.query)
            return max(inner * 0.5, 1.0) if query.distinct else inner
        if isinstance(query, ast.Renaming):
            return self.cardinality(query.query)
        if isinstance(query, ast.Join):
            left = self.cardinality(query.left)
            right = self.cardinality(query.right)
            if query.kind is ast.JoinKind.CROSS:
                return left * right
            provenance = self.provenance(query.left)
            provenance.update(self.provenance(query.right))
            joined = left * right * self.selectivity(query.predicate, provenance)
            if query.kind is ast.JoinKind.INNER:
                return max(joined, 1.0)
            if query.kind is ast.JoinKind.LEFT:
                return max(joined, left)
            if query.kind is ast.JoinKind.RIGHT:
                return max(joined, right)
            return max(joined, left + right)
        if isinstance(query, ast.UnionOp):
            total = self.cardinality(query.left) + self.cardinality(query.right)
            return total if query.all else max(total * 0.5, 1.0)
        if isinstance(query, ast.GroupBy):
            inner = self.cardinality(query.query)
            if not query.keys:
                return 1.0
            groups = 1.0
            provenance = self.provenance(query.query)
            for key in query.keys:
                if isinstance(key, ast.AttributeRef):
                    distinct = self.distinct_values(key.name, provenance)
                    groups *= distinct if distinct is not None else inner ** 0.5
                else:
                    groups *= inner ** 0.5
            return max(min(groups, inner), 1.0)
        if isinstance(query, ast.WithQuery):
            return self.cardinality(query.body)
        if isinstance(query, ast.RecursiveQuery):
            # A traversal fixpoint yields at most distinct endpoint pairs;
            # estimate one extra hop's growth per bounded hop (capped).
            base = self.cardinality(query.base)
            info = query.reach
            hops = info.max_hops if info is not None and info.max_hops else 4
            return max(base * float(min(hops, 4)), 1.0)
        if isinstance(query, ast.OrderBy):
            inner = self.cardinality(query.query)
            if query.limit is not None:
                # LIMIT 0 still floors at one row — a zero estimate would
                # poison every join order containing this subtree.
                return min(inner, float(max(query.limit, 1)))
            return inner
        return DEFAULT_ROW_COUNT

    # -- selectivities ------------------------------------------------------

    def selectivity(
        self, predicate: ast.Predicate, provenance: dict[str, tuple[str, str]]
    ) -> float:
        if isinstance(predicate, ast.BoolLit):
            return 1.0 if predicate.value else 0.0
        if isinstance(predicate, ast.Comparison):
            return self._comparison_selectivity(predicate, provenance)
        if isinstance(predicate, ast.IsNull):
            return 1.0 - NULL_SELECTIVITY if predicate.negated else NULL_SELECTIVITY
        if isinstance(predicate, ast.InValues):
            if isinstance(predicate.operand, ast.AttributeRef):
                distinct = self.distinct_values(predicate.operand.name, provenance)
                if distinct is not None:
                    return min(len(predicate.values) / distinct, 1.0)
            return min(len(predicate.values) * EQUALITY_SELECTIVITY, 1.0)
        if isinstance(predicate, (ast.InQuery, ast.ExistsQuery)):
            return SUBQUERY_SELECTIVITY
        if isinstance(predicate, ast.And):
            return self.selectivity(predicate.left, provenance) * self.selectivity(
                predicate.right, provenance
            )
        if isinstance(predicate, ast.Or):
            left = self.selectivity(predicate.left, provenance)
            right = self.selectivity(predicate.right, provenance)
            return min(left + right - left * right, 1.0)
        if isinstance(predicate, ast.Not):
            return 1.0 - self.selectivity(predicate.operand, provenance)
        return DEFAULT_SELECTIVITY

    def _comparison_selectivity(
        self, predicate: ast.Comparison, provenance: dict[str, tuple[str, str]]
    ) -> float:
        left, right = predicate.left, predicate.right
        if predicate.op == "=":
            if isinstance(left, ast.AttributeRef) and isinstance(
                right, ast.AttributeRef
            ):
                ndv_left = self.distinct_values(left.name, provenance)
                ndv_right = self.distinct_values(right.name, provenance)
                known = [n for n in (ndv_left, ndv_right) if n is not None]
                if known:
                    return 1.0 / max(known)
                return EQUALITY_SELECTIVITY
            if isinstance(left, ast.AttributeRef) or isinstance(
                right, ast.AttributeRef
            ):
                ref = left if isinstance(left, ast.AttributeRef) else right
                distinct = self.distinct_values(ref.name, provenance)
                if distinct is not None:
                    return 1.0 / distinct
            return EQUALITY_SELECTIVITY
        if predicate.op == "<>":
            return NOT_EQUAL_SELECTIVITY
        return RANGE_SELECTIVITY


# ---------------------------------------------------------------------------
# Reference collection / substitution helpers
# ---------------------------------------------------------------------------


def _expression_refs(expression: ast.Expression) -> set[str] | None:
    """Attribute names referenced by *expression*; ``None`` when a subquery
    makes the reference set statically unknowable (correlation)."""
    if isinstance(expression, ast.AttributeRef):
        return {expression.name}
    if isinstance(expression, ast.Literal):
        return set()
    if isinstance(expression, ast.Aggregate):
        if expression.argument is None:
            return set()
        return _expression_refs(expression.argument)
    if isinstance(expression, ast.BinaryOp):
        left = _expression_refs(expression.left)
        right = _expression_refs(expression.right)
        if left is None or right is None:
            return None
        return left | right
    if isinstance(expression, ast.CastPredicate):
        return _predicate_refs(expression.predicate)
    return None


def _predicate_refs(predicate: ast.Predicate) -> set[str] | None:
    """Attribute names referenced by *predicate* (``None`` on subqueries)."""
    if isinstance(predicate, ast.BoolLit):
        return set()
    if isinstance(predicate, ast.Comparison):
        left = _expression_refs(predicate.left)
        right = _expression_refs(predicate.right)
        if left is None or right is None:
            return None
        return left | right
    if isinstance(predicate, ast.IsNull):
        return _expression_refs(predicate.operand)
    if isinstance(predicate, ast.InValues):
        return _expression_refs(predicate.operand)
    if isinstance(predicate, (ast.And, ast.Or)):
        left = _predicate_refs(predicate.left)
        right = _predicate_refs(predicate.right)
        if left is None or right is None:
            return None
        return left | right
    if isinstance(predicate, ast.Not):
        return _predicate_refs(predicate.operand)
    # InQuery/ExistsQuery bodies may be correlated with the current scope.
    return None


def _substitute_refs(node, mapping: dict[str, str]):
    """Rewrite every AttributeRef through *mapping* (expression or predicate)."""
    if isinstance(node, ast.AttributeRef):
        return ast.AttributeRef(mapping.get(node.name, node.name))
    if isinstance(node, (ast.Literal, ast.BoolLit)):
        return node
    if isinstance(node, ast.Aggregate):
        if node.argument is None:
            return node
        return ast.Aggregate(
            node.function, _substitute_refs(node.argument, mapping), node.distinct
        )
    if isinstance(node, ast.BinaryOp):
        return ast.BinaryOp(
            node.op,
            _substitute_refs(node.left, mapping),
            _substitute_refs(node.right, mapping),
        )
    if isinstance(node, ast.CastPredicate):
        return ast.CastPredicate(_substitute_refs(node.predicate, mapping))
    if isinstance(node, ast.Comparison):
        return ast.Comparison(
            node.op,
            _substitute_refs(node.left, mapping),
            _substitute_refs(node.right, mapping),
        )
    if isinstance(node, ast.IsNull):
        return ast.IsNull(_substitute_refs(node.operand, mapping), node.negated)
    if isinstance(node, ast.InValues):
        return ast.InValues(_substitute_refs(node.operand, mapping), node.values)
    if isinstance(node, ast.And):
        return ast.And(
            _substitute_refs(node.left, mapping), _substitute_refs(node.right, mapping)
        )
    if isinstance(node, ast.Or):
        return ast.Or(
            _substitute_refs(node.left, mapping), _substitute_refs(node.right, mapping)
        )
    if isinstance(node, ast.Not):
        return ast.Not(_substitute_refs(node.operand, mapping))
    return node


# ---------------------------------------------------------------------------
# Recursion unrolling (variable-length traversals)
# ---------------------------------------------------------------------------


def expand_recursions(
    query: ast.Query,
    estimator: CardinalityEstimator,
    report: PlanReport | None = None,
    force_recursive: bool = False,
) -> ast.Query:
    """Rewrite cheap bounded traversal fixpoints into unrolled join chains.

    Every :class:`~repro.sql.ast.RecursiveQuery` carrying traversal
    metadata (:class:`~repro.sql.ast.ReachInfo`) with a bounded upper hop
    count is a candidate.  The unrolled plan — ``UNION`` over ``k ∈
    [max(lo,1), hi]`` of a *k*-way self-join of the one-hop CTE, projected
    to distinct endpoint pairs — is bag-equivalent to the distinct-union
    fixpoint and lets engines use ordinary join machinery, but its
    intermediate results grow with the per-hop fan-out; the rewrite only
    fires while :func:`_unrolled_rows` stays under
    :data:`UNROLL_ROW_LIMIT` (statistics-driven; generous defaults apply
    when no statistics were collected).  Open upper bounds always keep the
    recursive CTE.

    *force_recursive* keeps every fixpoint as a recursive CTE regardless of
    cost — the serving layer's budget downgrade: an unrolled plan whose
    join chains blew a query budget is re-planned this way, trading the
    engine-friendly shape for the fixpoint's incremental frontier.
    """

    def visit(rebuilt: ast.RecursiveQuery) -> ast.Query:
        if force_recursive:
            unrolled: ast.Query | None = None
            reason, estimate = "forced recursive (budget downgrade)", None
        else:
            unrolled, reason, estimate = _unroll_reach(rebuilt, estimator)
        if report is not None and rebuilt.reach is not None:
            report.traversals.append(
                TraversalPlan(
                    name=rebuilt.name,
                    choice="unrolled" if unrolled is not None else "recursive",
                    min_hops=rebuilt.reach.min_hops,
                    max_hops=rebuilt.reach.max_hops,
                    estimated_rows=estimate,
                    reason=reason,
                )
            )
        return unrolled if unrolled is not None else rebuilt

    return _rewrite_recursions(query, visit)


def cap_recursions(
    query: ast.Query,
    depth_cap: int,
    report: PlanReport | None = None,
) -> ast.Query:
    """Bound every traversal fixpoint to walks of at most *depth_cap* hops.

    The budget enforcement of ``QueryBudget.max_depth`` for engine
    execution: a traversal whose upper hop bound is open (or above the
    cap) is rebuilt with a bounded step — honest depth increments and a
    ``depth < cap`` extension predicate — so the engine's recursive CTE
    stops at the cap instead of saturating the full reachable set.  For an
    open-bound traversal this *restricts* the result to endpoints
    reachable within the cap (the documented lossy downgrade: bounded
    answers instead of unbounded work); for a bounded one above the cap it
    is the same restriction.  Only the canonical transpiler step shape is
    rewritten — anything else is left untouched (always safe).
    """

    def visit(rebuilt: ast.RecursiveQuery) -> ast.Query:
        capped, reason = _cap_reach(rebuilt, depth_cap)
        if capped is not None and report is not None and rebuilt.reach is not None:
            report.traversals.append(
                TraversalPlan(
                    name=rebuilt.name,
                    choice="depth-capped",
                    min_hops=rebuilt.reach.min_hops,
                    max_hops=depth_cap,
                    estimated_rows=None,
                    reason=reason,
                )
            )
        return capped if capped is not None else rebuilt

    return _rewrite_recursions(query, visit)


def _rewrite_recursions(
    query: ast.Query,
    visit,
) -> ast.Query:
    """Apply *visit* to every :class:`~repro.sql.ast.RecursiveQuery` in
    *query* (children already rewritten), rebuilding the tree around the
    replacements — the traversal skeleton shared by
    :func:`expand_recursions` and :func:`cap_recursions`."""

    def walk_query(node: ast.Query) -> ast.Query:
        if isinstance(node, ast.RecursiveQuery):
            rebuilt = ast.RecursiveQuery(
                node.name,
                node.columns,
                walk_query(node.base),
                walk_query(node.step),
                walk_query(node.body),
                node.union_all,
                node.reach,
            )
            return visit(rebuilt)
        return ast.map_children(node, walk_query, walk_predicate)

    def walk_predicate(predicate: ast.Predicate) -> ast.Predicate:
        if isinstance(predicate, ast.And):
            return ast.And(walk_predicate(predicate.left), walk_predicate(predicate.right))
        if isinstance(predicate, ast.Or):
            return ast.Or(walk_predicate(predicate.left), walk_predicate(predicate.right))
        if isinstance(predicate, ast.Not):
            return ast.Not(walk_predicate(predicate.operand))
        if isinstance(predicate, ast.InQuery):
            return ast.InQuery(
                predicate.operands, walk_query(predicate.query), predicate.negated
            )
        if isinstance(predicate, ast.ExistsQuery):
            return ast.ExistsQuery(walk_query(predicate.query), predicate.negated)
        return predicate

    return walk_query(query)


def _cap_reach(
    node: ast.RecursiveQuery, depth_cap: int
) -> tuple[ast.Query | None, str]:
    """A depth-capped rebuild of *node* (or ``None`` to leave it alone),
    with the reason either way."""
    from dataclasses import replace as dc_replace

    info = node.reach
    if info is None:
        return None, "no traversal metadata"
    if info.max_hops is not None and info.max_hops <= depth_cap:
        return None, f"already bounded at {info.max_hops} <= cap {depth_cap}"
    if len(node.columns) != 3:
        return None, "no depth column"
    step = node.step
    if not (isinstance(step, ast.Projection) and isinstance(step.query, ast.Join)):
        return None, "unrecognised step shape"
    join = step.query
    if not (
        isinstance(join.left, ast.Renaming)
        and isinstance(join.left.query, ast.Relation)
        and join.left.query.name == node.name
        and isinstance(join.right, ast.Renaming)
        and isinstance(join.right.query, ast.Relation)
    ):
        return None, "unrecognised step shape"
    walker, stepper = join.left.name, join.right.name
    hop_relation = join.right.query.name
    source, target, depth = node.columns
    depth_ref = ast.AttributeRef(f"{walker}.{depth}")
    # The canonical step, rebuilt bounded: honest +1 depth increments and
    # a `depth < cap` extension guard (mirrors the transpiler's bounded
    # branch, with the cap as the upper bound).
    capped_step = ast.Projection(
        ast.Join(
            ast.JoinKind.INNER,
            ast.Renaming(walker, ast.Relation(node.name)),
            ast.Renaming(stepper, ast.Relation(hop_relation)),
            ast.And(
                ast.Comparison(
                    "=",
                    ast.AttributeRef(f"{stepper}.{source}"),
                    ast.AttributeRef(f"{walker}.{target}"),
                ),
                ast.Comparison("<", depth_ref, ast.Literal(depth_cap)),
            ),
        ),
        (
            ast.OutputColumn(source, ast.AttributeRef(f"{walker}.{source}")),
            ast.OutputColumn(target, ast.AttributeRef(f"{stepper}.{target}")),
            ast.OutputColumn(depth, ast.BinaryOp("+", depth_ref, ast.Literal(1))),
        ),
    )
    previous = "open" if info.max_hops is None else str(info.max_hops)
    capped = ast.RecursiveQuery(
        node.name,
        node.columns,
        node.base,
        capped_step,
        node.body,
        node.union_all,
        dc_replace(info, max_hops=depth_cap),
    )
    return capped, f"budget max_depth={depth_cap} (was {previous})"


def _unroll_reach(
    node: ast.RecursiveQuery, estimator: CardinalityEstimator
) -> tuple[ast.Query | None, str, float | None]:
    """The unrolled replacement for *node* (or ``None`` to keep recursion),
    the human-readable reason for the choice, and the estimated size of the
    longest unrolled chain when it was computed."""
    info = node.reach
    if info is None:
        return None, "no traversal metadata", None
    if info.max_hops is None:
        return None, "open upper hop bound", None
    lo = max(info.min_hops, 1)
    hi = info.max_hops
    if hi < lo:
        return None, f"empty hop range ({lo}..{hi})", None
    if hi > UNROLL_MAX_HOPS:
        return None, f"upper bound {hi} > unroll limit {UNROLL_MAX_HOPS}", None
    estimate = _unrolled_rows(info, estimator)
    if estimate > UNROLL_ROW_LIMIT:
        return (
            None,
            f"estimated chain rows {estimate:.0f} > limit {UNROLL_ROW_LIMIT:.0f}",
            estimate,
        )
    source, target = node.columns[0], node.columns[1]
    chains = [
        _hop_chain(node.name, info.hop_relation, k, source, target)
        for k in range(lo, hi + 1)
    ]
    unrolled = chains[0]
    for chain in chains[1:]:
        unrolled = ast.UnionOp(unrolled, chain, all=False)
    reason = (
        f"estimated chain rows {estimate:.0f} ≤ limit {UNROLL_ROW_LIMIT:.0f}"
    )
    return unrolled, reason, estimate


def _hop_chain(
    stem: str, hop_relation: str, hops: int, source: str, target: str
) -> ast.Query:
    """Distinct endpoint pairs of exactly *hops* hops: a k-way join chain."""
    aliases = [f"{stem}_h{index}" for index in range(1, hops + 1)]
    joined: ast.Query = ast.Renaming(aliases[0], ast.Relation(hop_relation))
    for previous, alias in zip(aliases, aliases[1:]):
        joined = ast.Join(
            ast.JoinKind.INNER,
            joined,
            ast.Renaming(alias, ast.Relation(hop_relation)),
            ast.Comparison(
                "=",
                ast.AttributeRef(f"{alias}.{source}"),
                ast.AttributeRef(f"{previous}.{target}"),
            ),
        )
    return ast.Projection(
        joined,
        (
            ast.OutputColumn(source, ast.AttributeRef(f"{aliases[0]}.{source}")),
            ast.OutputColumn(target, ast.AttributeRef(f"{aliases[-1]}.{target}")),
        ),
        distinct=True,
    )


def _unrolled_rows(info: ast.ReachInfo, estimator: CardinalityEstimator) -> float:
    """Estimated intermediate size of the longest unrolled chain.

    One hop contributes the edge table's row count; every further hop
    multiplies by the per-hop fan-out — rows over the NDV of the column(s)
    a hop leaves from (both endpoint columns for undirected traversal).
    Without statistics the Selinger default row count applies with a
    conservative fan-out of 1, so small bounded traversals unroll.
    """
    assert info.max_hops is not None
    rows = estimator.base_rows(info.edge_table)
    fanout = 0.0
    table = estimator.stats.get(info.edge_table) if estimator.stats else None
    for column in info.fanout_columns:
        distinct = table.distinct_of(column) if table is not None else None
        if distinct:
            fanout += rows / float(max(distinct, 1))
        else:
            fanout += 1.0
    return rows * fanout ** max(info.max_hops - 1, 0)


# ---------------------------------------------------------------------------
# Join-graph planning
# ---------------------------------------------------------------------------


@dataclass
class _Conjunct:
    """One decomposed conjunct with its placement analysis."""

    predicate: ast.Predicate
    leaves: frozenset[int]


def plan_joins(
    query: ast.Query,
    schema: RelationalSchema,
    estimator: CardinalityEstimator,
    report: PlanReport | None = None,
) -> ast.Query:
    """Rewrite every CROSS/INNER join region of *query* into a pushed-down,
    greedily ordered equi-join tree (see the module docstring)."""
    return _Planner(schema, estimator, report).plan(query, {})


def _leaf_label(leaf: ast.Query) -> str:
    """A short human-readable name for a join-region leaf (plan reports)."""
    if isinstance(leaf, ast.Renaming):
        return f"{_leaf_label(leaf.query)} as {leaf.name}"
    if isinstance(leaf, ast.Relation):
        return leaf.name
    return type(leaf).__name__.lower()


class _Planner:
    def __init__(
        self,
        schema: RelationalSchema,
        estimator: CardinalityEstimator,
        report: PlanReport | None = None,
    ):
        self.schema = schema
        self.estimator = estimator
        self.report = report

    # -- traversal ----------------------------------------------------------

    def plan(self, query: ast.Query, ctes: dict[str, tuple[str, ...]]) -> ast.Query:
        if isinstance(query, ast.Selection) and self._is_region(query.query):
            return self._plan_region(query, ctes)
        if self._is_region(query):
            return self._plan_region(query, ctes)
        return self._plan_children(query, ctes)

    def _is_region(self, query: ast.Query) -> bool:
        return isinstance(query, ast.Join) and query.kind in (
            ast.JoinKind.CROSS,
            ast.JoinKind.INNER,
        )

    def _plan_children(
        self, query: ast.Query, ctes: dict[str, tuple[str, ...]]
    ) -> ast.Query:
        if isinstance(query, ast.WithQuery):
            # The body sees the CTE's attributes; extend the environment.
            definition = self.plan(query.definition, ctes)
            attributes = output_attributes(definition, self.schema, ctes)
            extended = dict(ctes)
            if attributes is not None:
                extended[query.name] = attributes
            return ast.WithQuery(query.name, definition, self.plan(query.body, extended))
        return ast.map_children(
            query,
            lambda q: self.plan(q, ctes),
            lambda p: self._plan_predicate(p, ctes),
        )

    def _plan_predicate(
        self, predicate: ast.Predicate, ctes: dict[str, tuple[str, ...]]
    ) -> ast.Predicate:
        if isinstance(predicate, ast.And):
            return ast.And(
                self._plan_predicate(predicate.left, ctes),
                self._plan_predicate(predicate.right, ctes),
            )
        if isinstance(predicate, ast.Or):
            return ast.Or(
                self._plan_predicate(predicate.left, ctes),
                self._plan_predicate(predicate.right, ctes),
            )
        if isinstance(predicate, ast.Not):
            return ast.Not(self._plan_predicate(predicate.operand, ctes))
        if isinstance(predicate, ast.InQuery):
            return ast.InQuery(
                predicate.operands, self.plan(predicate.query, ctes), predicate.negated
            )
        if isinstance(predicate, ast.ExistsQuery):
            return ast.ExistsQuery(self.plan(predicate.query, ctes), predicate.negated)
        return predicate

    # -- one region ---------------------------------------------------------

    def _plan_region(
        self, root: ast.Query, ctes: dict[str, tuple[str, ...]]
    ) -> ast.Query:
        if isinstance(root, ast.Selection):
            top_conjuncts = ast.conjuncts(root.predicate)
            tree = root.query
        else:
            top_conjuncts = []
            tree = root

        leaves: list[ast.Query] = []
        inner_conjuncts: list[ast.Predicate] = []

        def collect(node: ast.Query) -> None:
            if self._is_region(node):
                collect(node.left)
                collect(node.right)
                if node.kind is ast.JoinKind.INNER:
                    inner_conjuncts.extend(ast.conjuncts(node.predicate))
            else:
                leaves.append(node)

        collect(tree)

        # Hoisting an inner-join predicate that embeds a subquery to the
        # region top could change what its (correlated) references capture;
        # leave such regions untouched (shape preserved, leaves still planned).
        if any(_predicate_refs(c) is None for c in inner_conjuncts):
            return self._rebuild_original(root, ctes)

        leaf_attrs = [output_attributes(leaf, self.schema, ctes) for leaf in leaves]
        if any(attrs is None for attrs in leaf_attrs):
            return self._rebuild_original(root, ctes)

        exact: dict[str, int] = {}
        local: dict[str, list[str]] = {}
        ambiguous = False
        for index, attrs in enumerate(leaf_attrs):
            for attribute in attrs:
                if attribute in exact:
                    ambiguous = True
                exact[attribute] = index
                local.setdefault(attribute.rsplit(".", 1)[-1], []).append(attribute)
        if ambiguous:
            return self._rebuild_original(root, ctes)

        leaves = [self.plan(leaf, ctes) for leaf in leaves]

        def resolve(name: str) -> str | None:
            if name in exact:
                return name
            candidates = local.get(name, [])
            if len(candidates) == 1:
                return candidates[0]
            return None

        pushed: list[list[ast.Predicate]] = [[] for _ in leaves]
        edges: dict[frozenset[int], list[ast.Predicate]] = {}
        filters: list[_Conjunct] = []
        residual: list[ast.Predicate] = []

        for conjunct in top_conjuncts + inner_conjuncts:
            refs = _predicate_refs(conjunct)
            if refs is None:
                residual.append(conjunct)
                continue
            mapping: dict[str, str] = {}
            unresolved = False
            for name in refs:
                resolved = resolve(name)
                if resolved is None:
                    unresolved = True
                    break
                mapping[name] = resolved
            if unresolved:
                residual.append(conjunct)
                continue
            rewritten = _substitute_refs(conjunct, mapping)
            leaf_set = frozenset(exact[mapping[name]] for name in refs)
            if len(leaf_set) == 0:
                residual.append(rewritten)
            elif len(leaf_set) == 1:
                pushed[next(iter(leaf_set))].append(rewritten)
            elif (
                len(leaf_set) == 2
                and isinstance(rewritten, ast.Comparison)
                and rewritten.op == "="
                and isinstance(rewritten.left, ast.AttributeRef)
                and isinstance(rewritten.right, ast.AttributeRef)
            ):
                edges.setdefault(leaf_set, []).append(rewritten)
            else:
                filters.append(_Conjunct(rewritten, leaf_set))

        filtered_leaves = [
            ast.Selection(leaf, ast.conjoin(preds)) if preds else leaf
            for leaf, preds in zip(leaves, pushed)
        ]
        cardinalities = [self.estimator.cardinality(leaf) for leaf in filtered_leaves]
        provenance: dict[str, tuple[str, str]] = {}
        for leaf in leaves:
            provenance.update(self.estimator.provenance(leaf))

        order = self._greedy_order(cardinalities, edges, provenance)

        if self.report is not None and len(leaves) > 1:
            self.report.joins.append(
                JoinPlan(
                    order=tuple(_leaf_label(leaves[index]) for index in order),
                    pushed_predicates=sum(len(preds) for preds in pushed),
                    join_edges=sum(len(conjs) for conjs in edges.values()),
                )
            )

        joined = filtered_leaves[order[0]]
        placed = {order[0]}
        remaining_filters = list(filters)
        for index in order[1:]:
            join_preds: list[ast.Predicate] = []
            for pair, conjuncts_ in edges.items():
                if index in pair and (pair - {index}) <= placed:
                    join_preds.extend(conjuncts_)
            placed.add(index)
            still_pending: list[_Conjunct] = []
            for item in remaining_filters:
                if item.leaves <= placed:
                    join_preds.append(item.predicate)
                else:
                    still_pending.append(item)
            remaining_filters = still_pending
            if join_preds:
                joined = ast.Join(
                    ast.JoinKind.INNER,
                    joined,
                    filtered_leaves[index],
                    ast.conjoin(join_preds),
                )
            else:
                joined = ast.Join(ast.JoinKind.CROSS, joined, filtered_leaves[index])

        result: ast.Query = joined
        if residual:
            result = ast.Selection(result, ast.conjoin(residual))

        original_order = [a for attrs in leaf_attrs for a in attrs]
        new_order = [a for i in order for a in leaf_attrs[i]]
        if new_order != original_order:
            result = ast.Projection(
                result,
                tuple(
                    ast.OutputColumn(a, ast.AttributeRef(a)) for a in original_order
                ),
            )
        return result

    def _greedy_order(
        self,
        cardinalities: list[float],
        edges: dict[frozenset[int], list[ast.Predicate]],
        provenance: dict[str, tuple[str, str]],
    ) -> list[int]:
        """Left-deep greedy ordering: cheapest start, then the connected leaf
        minimizing the estimated intermediate result at each step."""
        count = len(cardinalities)
        remaining = set(range(count))
        start = min(remaining, key=lambda i: (cardinalities[i], i))
        order = [start]
        remaining.remove(start)
        accumulated = cardinalities[start]
        while remaining:
            best: tuple[bool, float, int] | None = None
            for candidate in remaining:
                selectivity = 1.0
                connected = False
                for pair, conjuncts_ in edges.items():
                    if candidate in pair and (pair - {candidate}) <= set(order):
                        connected = True
                        for conjunct in conjuncts_:
                            selectivity *= self.estimator.selectivity(
                                conjunct, provenance
                            )
                estimate = accumulated * cardinalities[candidate] * selectivity
                key = (not connected, estimate, candidate)
                if best is None or key < best:
                    best = key
            assert best is not None
            _, accumulated, chosen = best
            accumulated = max(accumulated, 1.0)
            order.append(chosen)
            remaining.remove(chosen)
        return order

    def _rebuild_original(
        self, node: ast.Query, ctes: dict[str, tuple[str, ...]]
    ) -> ast.Query:
        """Fallback when a region cannot be analysed: keep its exact shape
        (every predicate stays where it was) while still planning the
        non-join subtrees underneath."""
        if isinstance(node, ast.Selection):
            return ast.Selection(
                self._rebuild_original(node.query, ctes),
                self._plan_predicate(node.predicate, ctes),
            )
        if self._is_region(node):
            return ast.Join(
                node.kind,
                self._rebuild_original(node.left, ctes),
                self._rebuild_original(node.right, ctes),
                self._plan_predicate(node.predicate, ctes),
            )
        return self.plan(node, ctes)


# ---------------------------------------------------------------------------
# Dead-column pruning
# ---------------------------------------------------------------------------


def prune_columns(query: ast.Query, schema: RelationalSchema) -> ast.Query:
    """Drop projection/aggregation output columns no ancestor references.

    Top-down: the root keeps its full output; below it, each projection is
    narrowed to the attributes its consumers actually use.  ``None`` as the
    requirement set means "keep everything" — used at the root and whenever
    a subquery predicate makes the consumed set unknowable.
    """
    return _prune(query, None)


def _needed(alias: str, required: set[str]) -> bool:
    return alias in required or alias.rsplit(".", 1)[-1] in required


def _columns_refs(columns: tuple[ast.OutputColumn, ...]) -> set[str] | None:
    out: set[str] = set()
    for column in columns:
        refs = _expression_refs(column.expression)
        if refs is None:
            return None
        out |= refs
    return out


def _union(*sets: set[str] | None) -> set[str] | None:
    merged: set[str] = set()
    for one in sets:
        if one is None:
            return None
        merged |= one
    return merged


def _prune(query: ast.Query, required: set[str] | None) -> ast.Query:
    if isinstance(query, ast.Projection):
        if query.distinct or required is None:
            kept = query.columns
        else:
            kept = tuple(c for c in query.columns if _needed(c.alias, required))
            if not kept:
                kept = (query.columns[0],)
        return ast.Projection(
            _prune(query.query, _columns_refs(kept)), kept, query.distinct
        )
    if isinstance(query, ast.Selection):
        child = _union(required, _predicate_refs(query.predicate))
        return ast.Selection(_prune(query.query, child), query.predicate)
    if isinstance(query, ast.Join):
        child = _union(required, _predicate_refs(query.predicate))
        return ast.Join(
            query.kind,
            _prune(query.left, child),
            _prune(query.right, child),
            query.predicate,
        )
    if isinstance(query, ast.Renaming):
        return ast.Renaming(query.name, _prune(query.query, None))
    if isinstance(query, ast.UnionOp):
        # Bag union is positional; pruning either side independently would
        # misalign columns, so both sides keep everything.
        return ast.UnionOp(
            _prune(query.left, None), _prune(query.right, None), query.all
        )
    if isinstance(query, ast.GroupBy):
        if required is None:
            kept = query.columns
        else:
            kept = tuple(c for c in query.columns if _needed(c.alias, required))
            if not kept:
                kept = (query.columns[0],)
        key_refs = _union(*(_expression_refs(k) for k in query.keys)) if query.keys else set()
        child = _union(key_refs, _columns_refs(kept), _predicate_refs(query.having))
        return ast.GroupBy(_prune(query.query, child), query.keys, kept, query.having)
    if isinstance(query, ast.WithQuery):
        return ast.WithQuery(
            query.name, _prune(query.definition, None), _prune(query.body, required)
        )
    if isinstance(query, ast.OrderBy):
        child = (
            None
            if required is None
            else _union(required, *(_expression_refs(k) for k in query.keys))
        )
        return ast.OrderBy(_prune(query.query, child), query.keys, query.ascending, query.limit)
    return query


# ---------------------------------------------------------------------------
# Common-subplan elimination (hash-consing into CTEs)
# ---------------------------------------------------------------------------


def common_subplans(
    query: ast.Query,
    schema: RelationalSchema,
    max_rounds: int = 3,
    report: PlanReport | None = None,
) -> ast.Query:
    """Hoist repeated self-contained subtrees into ``WithQuery`` bindings.

    Fires on undirected-edge expansions and multi-pattern queries where the
    transpiler emits the same scan/filter subtree several times; every
    occurrence is replaced by a reference to one shared CTE, so the
    reference evaluator computes it once and engines see a single ``WITH``
    definition.
    """
    used_names = {relation.name for relation in schema.relations}
    for node in _spine_nodes(query):
        if isinstance(node, ast.WithQuery):
            used_names.add(node.name)
    for round_index in range(max_rounds):
        candidate = _best_repeated_subtree(query, schema)
        if candidate is None:
            return query
        name = _fresh_name("cse", used_names)
        used_names.add(name)
        if report is not None:
            report.cte_names.append(name)
        query = ast.WithQuery(name, candidate, _replace(query, candidate, name))
    return query


def _fresh_name(stem: str, used: set[str]) -> str:
    counter = 1
    while f"{stem}{counter}" in used:
        counter += 1
    return f"{stem}{counter}"


def _spine_nodes(query: ast.Query):
    """Query nodes of the main tree, excluding subquery-predicate bodies."""
    yield query
    if isinstance(query, (ast.Projection, ast.Selection, ast.Renaming, ast.OrderBy, ast.GroupBy)):
        yield from _spine_nodes(query.query)
    elif isinstance(query, (ast.Join, ast.UnionOp)):
        yield from _spine_nodes(query.left)
        yield from _spine_nodes(query.right)
    elif isinstance(query, ast.WithQuery):
        yield from _spine_nodes(query.definition)
        yield from _spine_nodes(query.body)


def _best_repeated_subtree(
    query: ast.Query, schema: RelationalSchema
) -> ast.Query | None:
    counts = Counter(_spine_nodes(query))
    candidates = [
        node
        for node, count in counts.items()
        if count >= 2
        and not isinstance(node, ast.Relation)
        and ast_size(node) >= CSE_MIN_SIZE
        and _self_contained(node, schema)
    ]
    if not candidates:
        return None
    return max(candidates, key=ast_size)


def _self_contained(query: ast.Query, schema: RelationalSchema) -> bool:
    """Whether every reference inside *query* resolves within it — the
    condition for hoisting it to the top without capturing/losing names."""
    free = _free_refs(query, schema)
    return free is not None and not free


def _free_refs(query: ast.Query, schema: RelationalSchema) -> set[str] | None:
    """References escaping *query*'s own scope; ``None`` = unknowable."""

    def unresolved(refs: set[str] | None, attrs: tuple[str, ...] | None) -> set[str] | None:
        if refs is None or attrs is None:
            return None
        locals_ = Counter(a.rsplit(".", 1)[-1] for a in attrs)
        out = set()
        for name in refs:
            if name in attrs:
                continue
            if locals_.get(name, 0) == 1:
                continue
            out.add(name)
        return out

    if isinstance(query, ast.Relation):
        try:
            schema.relation(query.name)
        except Exception:
            return None  # CTE reference — binding would be left behind
        return set()
    if isinstance(query, ast.Projection):
        inner = _free_refs(query.query, schema)
        attrs = output_attributes(query.query, schema)
        own = unresolved(_columns_refs(query.columns), attrs)
        return _union(inner, own)
    if isinstance(query, ast.Selection):
        inner = _free_refs(query.query, schema)
        attrs = output_attributes(query.query, schema)
        own = unresolved(_predicate_refs(query.predicate), attrs)
        return _union(inner, own)
    if isinstance(query, ast.Renaming):
        return _free_refs(query.query, schema)
    if isinstance(query, ast.Join):
        left = _free_refs(query.left, schema)
        right = _free_refs(query.right, schema)
        attrs = output_attributes(query, schema)
        own = unresolved(_predicate_refs(query.predicate), attrs)
        return _union(left, right, own)
    if isinstance(query, ast.UnionOp):
        return _union(_free_refs(query.left, schema), _free_refs(query.right, schema))
    if isinstance(query, ast.GroupBy):
        inner = _free_refs(query.query, schema)
        attrs = output_attributes(query.query, schema)
        key_refs = (
            _union(*(_expression_refs(k) for k in query.keys)) if query.keys else set()
        )
        own = unresolved(
            _union(key_refs, _columns_refs(query.columns), _predicate_refs(query.having)),
            attrs,
        )
        return _union(inner, own)
    if isinstance(query, ast.OrderBy):
        inner = _free_refs(query.query, schema)
        attrs = output_attributes(query.query, schema)
        own = unresolved(
            _union(*(_expression_refs(k) for k in query.keys)) if query.keys else set(),
            attrs,
        )
        return _union(inner, own)
    return None  # WithQuery bindings and unknown nodes: be conservative


def _replace(query: ast.Query, target: ast.Query, name: str) -> ast.Query:
    if query == target:
        return ast.Relation(name)
    return ast.map_children(query, lambda q: _replace(q, target, name))
