"""Reference bag semantics for Featherweight SQL.

This module implements the denotational semantics the paper inherits from
VeriEQL [He et al. 2024]: queries are functions from database instances to
bags of rows, predicates follow three-valued logic, and ``GROUP BY``
partitions rows by key-tuple equality (with NULL equal to NULL, as in SQL).

The evaluator supports correlated subqueries: ``IN (SELECT ...)`` and
``EXISTS (SELECT ...)`` bodies may reference attributes of enclosing rows.
Resolution is innermost-scope-first, falling back outward — SQL's standard
name resolution.

This interpreter is the semantic ground truth for the whole library: the
bounded model checker executes candidate counterexamples with it, the
property tests validate the transpiler against it, and the execution
backend's SQLite renderings are cross-checked against it.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.common import arithmetic
from repro.common.aggregates import combine, count_rows
from repro.common.budget import BudgetTracker, QueryBudget, as_tracker
from repro.common.errors import SemanticsError
from repro.common.values import (
    NULL,
    Value,
    is_null,
    sort_key,
    sql_and,
    sql_not,
    sql_or,
    value_eq,
    value_lt,
)
from repro.relational.instance import Database, Row, Table
from repro.sql import ast


@dataclass(frozen=True)
class _RowScope:
    """One visible row during predicate/expression evaluation."""

    attributes: tuple[str, ...]
    row: Row

    def lookup(self, name: str) -> tuple[bool, Value]:
        """Resolve *name*; returns ``(found, value)``."""
        if name in self.attributes:
            return True, self.row[self.attributes.index(name)]
        local_matches = [
            index
            for index, attribute in enumerate(self.attributes)
            if attribute.rsplit(".", 1)[-1] == name
        ]
        if len(local_matches) == 1:
            return True, self.row[local_matches[0]]
        if len(local_matches) > 1:
            raise SemanticsError(f"ambiguous attribute reference {name!r}")
        return False, NULL


@dataclass(frozen=True)
class _Context:
    """Evaluation context: the database, CTE bindings, and outer row scopes."""

    database: Database
    ctes: tuple[tuple[str, Table], ...] = ()
    outer: tuple[_RowScope, ...] = ()
    budget: BudgetTracker | None = None

    def cte(self, name: str) -> Table | None:
        for cte_name, table in reversed(self.ctes):
            if cte_name == name:
                return table
        return None

    def with_cte(self, name: str, table: Table) -> "_Context":
        return replace(self, ctes=self.ctes + ((name, table),))

    def with_outer(self, scopes: tuple[_RowScope, ...]) -> "_Context":
        return replace(self, outer=scopes)


def evaluate_query(
    query: ast.Query,
    database: Database,
    budget: "QueryBudget | BudgetTracker | None" = None,
) -> Table:
    """Evaluate ``⟦Q⟧_D`` — the public entry point.

    *budget* (a :class:`~repro.common.budget.QueryBudget` or an in-flight
    :class:`~repro.common.budget.BudgetTracker`) bounds the semi-naive
    fixpoint: rounds charge recursion depth, admitted rows charge the row
    limit, and the wall clock is checked per round.  Exceeding any limit
    raises :class:`~repro.common.budget.QueryBudgetExceeded` with
    partial-progress diagnostics.  The final result is charged against the
    row limit too, so non-recursive queries are bounded as well.
    """
    tracker = as_tracker(budget)
    result = _eval(query, _Context(database, budget=tracker))
    if tracker is not None:
        tracker.charge_rows(len(result.rows), stage="reference")
        tracker.check_timeout(stage="reference")
    return result


# ---------------------------------------------------------------------------
# Query evaluation
# ---------------------------------------------------------------------------


def _eval(query: ast.Query, ctx: _Context) -> Table:
    if isinstance(query, ast.Relation):
        return _eval_relation(query, ctx)
    if isinstance(query, ast.Projection):
        return _eval_projection(query, ctx)
    if isinstance(query, ast.Selection):
        return _eval_selection(query, ctx)
    if isinstance(query, ast.Renaming):
        return _eval_renaming(query, ctx)
    if isinstance(query, ast.Join):
        return _eval_join(query, ctx)
    if isinstance(query, ast.UnionOp):
        return _eval_union(query, ctx)
    if isinstance(query, ast.GroupBy):
        return _eval_group_by(query, ctx)
    if isinstance(query, ast.WithQuery):
        return _eval_with(query, ctx)
    if isinstance(query, ast.RecursiveQuery):
        return _eval_recursive(query, ctx)
    if isinstance(query, ast.OrderBy):
        return _eval_order_by(query, ctx)
    raise SemanticsError(f"cannot evaluate query node {type(query).__name__}")


def _eval_relation(query: ast.Relation, ctx: _Context) -> Table:
    cte = ctx.cte(query.name)
    if cte is not None:
        return Table(cte.attributes, list(cte.rows))
    table = ctx.database.table(query.name)
    return Table(table.attributes, list(table.rows))


def _eval_projection(query: ast.Projection, ctx: _Context) -> Table:
    inner = _eval(query.query, ctx)
    attributes = tuple(column.alias for column in query.columns)
    rows: list[Row] = []
    for row in inner:
        scope = _RowScope(inner.attributes, row)
        rows.append(
            tuple(
                _eval_scalar(column.expression, (scope,) + ctx.outer, ctx)
                for column in query.columns
            )
        )
    if query.distinct:
        rows = _dedup_rows(rows)
    return Table(attributes, rows)


def _eval_selection(query: ast.Selection, ctx: _Context) -> Table:
    inner = _eval(query.query, ctx)
    rows = []
    for row in inner:
        scope = _RowScope(inner.attributes, row)
        if _eval_predicate(query.predicate, (scope,) + ctx.outer, ctx) is True:
            rows.append(row)
    return Table(inner.attributes, rows)


def _eval_renaming(query: ast.Renaming, ctx: _Context) -> Table:
    inner = _eval(query.query, ctx)
    attributes = tuple(
        f"{query.name}.{attribute.replace('.', '_')}" for attribute in inner.attributes
    )
    return Table(attributes, list(inner.rows))


def _eval_join(query: ast.Join, ctx: _Context) -> Table:
    left = _eval(query.left, ctx)
    right = _eval(query.right, ctx)
    attributes = left.attributes + right.attributes
    if len(set(attributes)) != len(attributes):
        raise SemanticsError(
            "join would produce duplicate attribute names; rename the operands"
        )
    null_right = tuple([NULL] * len(right.attributes))
    null_left = tuple([NULL] * len(left.attributes))
    rows: list[Row] = []
    if query.kind is ast.JoinKind.CROSS:
        for left_row in left:
            for right_row in right:
                rows.append(left_row + right_row)
        return Table(attributes, rows)

    matched_right: set[int] = set()
    for left_row in left:
        matched = False
        for right_index, right_row in enumerate(right):
            combined = left_row + right_row
            scope = _RowScope(attributes, combined)
            if _eval_predicate(query.predicate, (scope,) + ctx.outer, ctx) is True:
                rows.append(combined)
                matched = True
                matched_right.add(right_index)
        if not matched and query.kind in (ast.JoinKind.LEFT, ast.JoinKind.FULL):
            rows.append(left_row + null_right)
    if query.kind in (ast.JoinKind.RIGHT, ast.JoinKind.FULL):
        for right_index, right_row in enumerate(right):
            if right_index not in matched_right:
                rows.append(null_left + right_row)
    if query.kind is ast.JoinKind.RIGHT:
        # A plain right join also keeps the matched pairs computed above.
        pass
    return Table(attributes, rows)


def _eval_union(query: ast.UnionOp, ctx: _Context) -> Table:
    left = _eval(query.left, ctx)
    right = _eval(query.right, ctx)
    if len(left.attributes) != len(right.attributes):
        raise SemanticsError(
            f"union arity mismatch: {len(left.attributes)} vs {len(right.attributes)}"
        )
    rows = list(left.rows) + list(right.rows)
    if not query.all:
        rows = _dedup_rows(rows)
    return Table(left.attributes, rows)


def _eval_group_by(query: ast.GroupBy, ctx: _Context) -> Table:
    inner = _eval(query.query, ctx)
    groups: dict[tuple, list[Row]] = {}
    order: list[tuple] = []
    for row in inner:
        scope = _RowScope(inner.attributes, row)
        key = tuple(
            _eval_scalar(key_expr, (scope,) + ctx.outer, ctx) for key_expr in query.keys
        )
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(row)
    attributes = tuple(column.alias for column in query.columns)
    rows: list[Row] = []
    for key in order:
        member_rows = groups[key]
        if _eval_group_predicate(query.having, member_rows, inner.attributes, ctx) is not True:
            continue
        rows.append(
            tuple(
                _eval_in_group(column.expression, member_rows, inner.attributes, ctx)
                for column in query.columns
            )
        )
    return Table(attributes, rows)


def _eval_with(query: ast.WithQuery, ctx: _Context) -> Table:
    definition = _eval(query.definition, ctx)
    return _eval(query.body, ctx.with_cte(query.name, definition))


#: Fixpoint safety rails: a well-formed distinct-union recursion saturates
#: long before these (its state space is finite); a runaway bag-union
#: recursion must error out instead of looping forever.
_RECURSION_MAX_ROUNDS = 10_000
_RECURSION_MAX_ROWS = 2_000_000


def _eval_recursive(query: ast.RecursiveQuery, ctx: _Context) -> Table:
    """SQL-engine queue semantics: each round the step sees the rows the
    previous round added; with distinct union a row already accumulated is
    never re-enqueued, which is what makes cyclic traversals terminate."""
    base = _eval(query.base, ctx)
    if len(base.attributes) != len(query.columns):
        raise SemanticsError(
            f"recursive CTE {query.name!r} declares {len(query.columns)} columns "
            f"but its base case produces {len(base.attributes)}"
        )
    accumulated: list[Row] = []
    seen: set[Row] = set()

    def admit(rows: list[Row]) -> list[Row]:
        fresh: list[Row] = []
        for row in rows:
            if not query.union_all:
                if row in seen:
                    continue
                seen.add(row)
            accumulated.append(row)
            fresh.append(row)
        return fresh

    tracker = ctx.budget
    frontier = admit(list(base.rows))
    if tracker is not None:
        tracker.charge_rows(len(frontier), stage="fixpoint")
    rounds = 0
    while frontier:
        rounds += 1
        if rounds > _RECURSION_MAX_ROUNDS or len(accumulated) > _RECURSION_MAX_ROWS:
            raise SemanticsError(
                f"recursive CTE {query.name!r} exceeded the evaluation budget "
                f"({rounds} rounds, {len(accumulated)} rows) — diverging recursion?"
            )
        if tracker is not None:
            tracker.charge_depth(rounds, stage="fixpoint")
            tracker.check_timeout(stage="fixpoint")
        delta = Table(query.columns, frontier)
        produced = _eval(query.step, ctx.with_cte(query.name, delta))
        if len(produced.attributes) != len(query.columns):
            raise SemanticsError(
                f"recursive CTE {query.name!r} declares {len(query.columns)} columns "
                f"but its recursive step produces {len(produced.attributes)}"
            )
        frontier = admit(list(produced.rows))
        if tracker is not None:
            tracker.charge_rows(len(frontier), stage="fixpoint")
    fixpoint = Table(query.columns, accumulated)
    return _eval(query.body, ctx.with_cte(query.name, fixpoint))


def _eval_order_by(query: ast.OrderBy, ctx: _Context) -> Table:
    inner = _eval(query.query, ctx)
    decorated = []
    for row in inner:
        scope = _RowScope(inner.attributes, row)
        keys = []
        for key_expr, ascending in zip(query.keys, query.ascending):
            value = _eval_scalar(key_expr, (scope,) + ctx.outer, ctx)
            keys.append(_directional_key(value, ascending))
        decorated.append((tuple(keys), row))
    decorated.sort(key=lambda pair: pair[0])
    rows = [row for _, row in decorated]
    if query.limit is not None:
        rows = rows[: query.limit]
    return Table(inner.attributes, rows, ordered=True)


class _Descending:
    """Inverts comparisons so a single ascending sort handles DESC keys."""

    __slots__ = ("key",)

    def __init__(self, key: tuple) -> None:
        self.key = key

    def __lt__(self, other: "_Descending") -> bool:
        return other.key < self.key

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Descending) and self.key == other.key


def _directional_key(value: Value, ascending: bool):
    key = sort_key(value)
    return key if ascending else _Descending(key)


def _dedup_rows(rows: list[Row]) -> list[Row]:
    seen: set[Row] = set()
    out: list[Row] = []
    for row in rows:
        if row not in seen:
            seen.add(row)
            out.append(row)
    return out


# ---------------------------------------------------------------------------
# Scalar expression evaluation (no aggregates)
# ---------------------------------------------------------------------------


def _eval_scalar(
    expression: ast.Expression, scopes: tuple[_RowScope, ...], ctx: _Context
) -> Value:
    if isinstance(expression, ast.AttributeRef):
        return _resolve(expression.name, scopes)
    if isinstance(expression, ast.Literal):
        return expression.value
    if isinstance(expression, ast.BinaryOp):
        left = _eval_scalar(expression.left, scopes, ctx)
        right = _eval_scalar(expression.right, scopes, ctx)
        return arithmetic.apply_binary(expression.op, left, right)
    if isinstance(expression, ast.CastPredicate):
        verdict = _eval_predicate(expression.predicate, scopes, ctx)
        if is_null(verdict):
            return NULL
        return 1 if verdict else 0
    if isinstance(expression, ast.Aggregate):
        raise SemanticsError(
            f"aggregate {expression} outside a GROUP BY output list"
        )
    raise SemanticsError(f"cannot evaluate expression node {type(expression).__name__}")


def _resolve(name: str, scopes: tuple[_RowScope, ...]) -> Value:
    for scope in scopes:
        found, value = scope.lookup(name)
        if found:
            return value
    raise SemanticsError(f"unknown attribute reference {name!r}")


# ---------------------------------------------------------------------------
# Group-mode evaluation (aggregates allowed)
# ---------------------------------------------------------------------------


def _eval_in_group(
    expression: ast.Expression,
    rows: list[Row],
    attributes: tuple[str, ...],
    ctx: _Context,
) -> Value:
    if isinstance(expression, ast.Aggregate):
        return _eval_aggregate(expression, rows, attributes, ctx)
    if isinstance(expression, ast.BinaryOp):
        left = _eval_in_group(expression.left, rows, attributes, ctx)
        right = _eval_in_group(expression.right, rows, attributes, ctx)
        return arithmetic.apply_binary(expression.op, left, right)
    head_scope = _RowScope(attributes, rows[0])
    return _eval_scalar(expression, (head_scope,) + ctx.outer, ctx)


def _eval_aggregate(
    aggregate: ast.Aggregate,
    rows: list[Row],
    attributes: tuple[str, ...],
    ctx: _Context,
) -> Value:
    if aggregate.argument is None:
        return count_rows(len(rows))
    values = []
    for row in rows:
        scope = _RowScope(attributes, row)
        values.append(_eval_scalar(aggregate.argument, (scope,) + ctx.outer, ctx))
    return combine(aggregate.function, values, aggregate.distinct)


def _eval_group_predicate(
    predicate: ast.Predicate,
    rows: list[Row],
    attributes: tuple[str, ...],
    ctx: _Context,
):
    """3VL predicate over a whole group (for HAVING)."""
    if isinstance(predicate, ast.BoolLit):
        return predicate.value
    if isinstance(predicate, ast.Comparison):
        left = _eval_in_group(predicate.left, rows, attributes, ctx)
        right = _eval_in_group(predicate.right, rows, attributes, ctx)
        return _compare(predicate.op, left, right)
    if isinstance(predicate, ast.IsNull):
        value = _eval_in_group(predicate.operand, rows, attributes, ctx)
        verdict = is_null(value)
        return (not verdict) if predicate.negated else verdict
    if isinstance(predicate, ast.And):
        return sql_and(
            _eval_group_predicate(predicate.left, rows, attributes, ctx),
            _eval_group_predicate(predicate.right, rows, attributes, ctx),
        )
    if isinstance(predicate, ast.Or):
        return sql_or(
            _eval_group_predicate(predicate.left, rows, attributes, ctx),
            _eval_group_predicate(predicate.right, rows, attributes, ctx),
        )
    if isinstance(predicate, ast.Not):
        return sql_not(_eval_group_predicate(predicate.operand, rows, attributes, ctx))
    head_scope = _RowScope(attributes, rows[0])
    return _eval_predicate(predicate, (head_scope,) + ctx.outer, ctx)


# ---------------------------------------------------------------------------
# Predicate evaluation (3VL)
# ---------------------------------------------------------------------------


def _eval_predicate(
    predicate: ast.Predicate, scopes: tuple[_RowScope, ...], ctx: _Context
):
    if isinstance(predicate, ast.BoolLit):
        return predicate.value
    if isinstance(predicate, ast.Comparison):
        left = _eval_scalar(predicate.left, scopes, ctx)
        right = _eval_scalar(predicate.right, scopes, ctx)
        return _compare(predicate.op, left, right)
    if isinstance(predicate, ast.IsNull):
        value = _eval_scalar(predicate.operand, scopes, ctx)
        verdict = is_null(value)
        return (not verdict) if predicate.negated else verdict
    if isinstance(predicate, ast.InValues):
        operand = _eval_scalar(predicate.operand, scopes, ctx)
        verdict = False
        for candidate in predicate.values:
            verdict = sql_or(verdict, value_eq(operand, candidate))
        return verdict
    if isinstance(predicate, ast.InQuery):
        return _eval_in_query(predicate, scopes, ctx)
    if isinstance(predicate, ast.ExistsQuery):
        subquery_ctx = ctx.with_outer(scopes)
        result = _eval(predicate.query, subquery_ctx)
        verdict = len(result.rows) > 0
        return (not verdict) if predicate.negated else verdict
    if isinstance(predicate, ast.And):
        return sql_and(
            _eval_predicate(predicate.left, scopes, ctx),
            _eval_predicate(predicate.right, scopes, ctx),
        )
    if isinstance(predicate, ast.Or):
        return sql_or(
            _eval_predicate(predicate.left, scopes, ctx),
            _eval_predicate(predicate.right, scopes, ctx),
        )
    if isinstance(predicate, ast.Not):
        return sql_not(_eval_predicate(predicate.operand, scopes, ctx))
    raise SemanticsError(f"cannot evaluate predicate node {type(predicate).__name__}")


def _eval_in_query(
    predicate: ast.InQuery, scopes: tuple[_RowScope, ...], ctx: _Context
):
    operands = tuple(_eval_scalar(e, scopes, ctx) for e in predicate.operands)
    subquery_ctx = ctx.with_outer(scopes)
    result = _eval(predicate.query, subquery_ctx)
    if len(result.attributes) != len(operands):
        raise SemanticsError(
            f"IN subquery arity {len(result.attributes)} does not match "
            f"left-hand tuple arity {len(operands)}"
        )
    verdict = False
    for row in result:
        row_match = True
        for operand, cell in zip(operands, row):
            row_match = sql_and(row_match, value_eq(operand, cell))
        verdict = sql_or(verdict, row_match)
    if predicate.negated:
        return sql_not(verdict)
    return verdict


def _compare(op: str, left: Value, right: Value):
    if op == "=":
        return value_eq(left, right)
    if op == "<>":
        return sql_not(value_eq(left, right))
    if op == "<":
        return value_lt(left, right)
    if op == ">":
        return value_lt(right, left)
    if op == "<=":
        return sql_or(value_lt(left, right), value_eq(left, right))
    if op == ">=":
        return sql_or(value_lt(right, left), value_eq(left, right))
    raise SemanticsError(f"unknown comparison operator {op!r}")
