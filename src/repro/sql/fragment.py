"""Query fragmentation for scatter-gather execution over hash shards.

The sharding coordinator (:mod:`repro.backends.sharding`) hash-partitions
node rows by primary key and co-partitions edge rows with their ``SRC``
endpoint, so every base-table row lives on exactly one shard.  A query is
*fragmentable* when running it unchanged (or lightly rewritten) on each
shard and combining the partial results reproduces the reference answer
over the whole database.  This module is the planner seam that decides —
statically, on the optimized algebra — which of three regimes a plan
falls into:

``shard_local``
    The plan scans exactly one base relation and computes no aggregate:
    every output row is derived from a single input row, and each input
    row lives on exactly one shard, so the bag union of the per-shard
    results *is* the global result.  A root ``DISTINCT`` or ``ORDER
    BY``/``LIMIT`` is re-applied at the coordinator (per-shard ``ORDER BY
    x LIMIT k`` is kept as sound top-k pruning: the global top-k is a
    subset of the union of per-shard top-ks).

``merge_aggregable``
    A root ``GroupBy`` whose aggregates are all distributive
    (``Count``/``Sum``/``Min``/``Max``) or algebraic (``Avg``, decomposed
    into per-shard ``Sum`` + ``Count`` columns) over a single scanned
    relation.  Shards compute partial aggregates per group; the
    coordinator re-groups partials by the group-key columns and folds
    them.  The folds reproduce the paper's aggregate quirk exactly
    (see :mod:`repro.common.aggregates`): a partial is ``NULL`` when the
    group's argument was ``NULL`` on every row of that shard, and the
    merged value is ``NULL`` only when *every* shard's partial is ``NULL``
    — including ``Count``.

``non_fragmentable``
    Everything else — joins and subqueries (row provenance spans shards
    once more than one scan participates), recursive traversals (the
    fixpoint needs the full edge relation, including the cross-shard
    edge table), CTEs (a binding scanned twice is a self-join), HAVING,
    DISTINCT aggregates, bare ``LIMIT`` without ``ORDER BY``
    (nondeterministic), and anything whose output the classifier cannot
    prove reconstructible.  The coordinator then routes the query,
    unchanged, to a single unsharded fallback backend: same results,
    with the reason recorded in the :class:`~repro.sql.planner.PlanReport`.

Classification is a property of the plan alone — it does not depend on
the shard count — so it is computed once per prepared query and cached
alongside it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.values import NULL, Value, is_null, sort_key
from repro.relational.instance import Table
from repro.relational.schema import RelationalSchema
from repro.sql import ast
from repro.sql.analysis import iter_nodes, output_attributes

SHARD_LOCAL = "shard_local"
MERGE_AGGREGABLE = "merge_aggregable"
NON_FRAGMENTABLE = "non_fragmentable"

#: Alias prefix for the per-shard Sum/Count columns an Avg decomposes into.
#: Double-underscore keeps them out of the way of user-visible aliases
#: (Cypher identifiers cannot start with ``_``).
_AVG_SUM = "__shard_avg_sum_"
_AVG_COUNT = "__shard_avg_count_"


@dataclass(frozen=True)
class MergeColumn:
    """How the coordinator reconstructs one output column from partials.

    *kind* is ``"key"`` (group key: all partials in a merged group agree,
    take any), ``"sum"`` (``Count``/``Sum``: fold partials by addition),
    ``"min"``/``"max"``, or ``"avg"`` (divide the merged hidden ``Sum``
    partial by the merged hidden ``Count`` partial).  *source* is the
    column's position in the *shard* result; for ``"avg"`` the
    decomposed pair lives at *source* (sum) and *count_source* (count).
    """

    alias: str
    kind: str
    source: int
    count_source: int | None = None


@dataclass(frozen=True)
class OrderSpec:
    """A root ``ORDER BY``/``LIMIT`` the coordinator re-applies post-union."""

    indexes: tuple[int, ...]
    ascending: tuple[bool, ...]
    limit: int | None

    def to_dict(self) -> dict:
        return {
            "indexes": list(self.indexes),
            "ascending": list(self.ascending),
            "limit": self.limit,
        }


@dataclass(frozen=True)
class FragmentPlan:
    """The classifier's verdict plus everything the coordinator needs.

    For fragmentable plans, *shard_query* is the algebra each shard
    executes (possibly rewritten: Avg decomposed, ORDER BY stripped from
    aggregate fragments) and *attributes* names the final merged output
    columns.  *merge* and *key_indexes* drive the merge-aggregable fold;
    *order* the post-union sort; *distinct* the post-union dedup.
    """

    kind: str
    reason: str
    shard_query: ast.Query | None = None
    attributes: tuple[str, ...] | None = None
    merge: tuple[MergeColumn, ...] = ()
    key_indexes: tuple[int, ...] = ()
    distinct: bool = False
    order: OrderSpec | None = None

    @property
    def fragmentable(self) -> bool:
        return self.kind != NON_FRAGMENTABLE

    def to_dict(self) -> dict:
        """JSON-friendly summary, embedded in ``PlanReport.sharding``."""
        document: dict = {"kind": self.kind, "reason": self.reason}
        if self.fragmentable:
            document["distinct"] = self.distinct
            document["merged_aggregates"] = [
                {"alias": column.alias, "merge": column.kind}
                for column in self.merge
                if column.kind != "key"
            ]
            if self.order is not None:
                document["order"] = self.order.to_dict()
        return document


def _non_fragmentable(reason: str) -> FragmentPlan:
    return FragmentPlan(NON_FRAGMENTABLE, reason)


# ---------------------------------------------------------------------------
# Classification
# ---------------------------------------------------------------------------


def fragment_query(query: ast.Query, schema: RelationalSchema) -> FragmentPlan:
    """Classify *query* (an optimized plan) for scatter-gather execution."""
    scans = 0
    for node in iter_nodes(query):
        if isinstance(node, ast.RecursiveQuery):
            return _non_fragmentable(
                "recursive traversal needs the full edge relation "
                "(cross-shard edges break per-shard fixpoints)"
            )
        if isinstance(node, ast.WithQuery):
            return _non_fragmentable(
                "CTE binding may be scanned more than once (self-join across shards)"
            )
        if isinstance(node, ast.Relation):
            scans += 1
        if isinstance(node, ast.Aggregate) and node.distinct:
            return _non_fragmentable(
                "DISTINCT aggregate cannot be folded from per-shard partials"
            )
    if scans == 0:
        return _non_fragmentable("plan scans no base relation")
    if scans > 1:
        return _non_fragmentable(
            f"plan scans {scans} base relations; join/subquery provenance "
            "spans shard boundaries"
        )

    body, order, order_error = _peel_root_order(query, schema)
    if order_error is not None:
        return _non_fragmentable(order_error)
    for node in iter_nodes(body):
        if isinstance(node, ast.OrderBy):
            return _non_fragmentable(
                "ORDER BY below the plan root cannot be re-applied after the union"
            )
        if isinstance(node, ast.Projection) and node.distinct and node is not body:
            return _non_fragmentable(
                "DISTINCT below the plan root would drop cross-shard duplicates late"
            )

    if isinstance(body, ast.GroupBy):
        return _classify_group_by(query, body, order, schema)

    for node in iter_nodes(body):
        if isinstance(node, (ast.GroupBy, ast.Aggregate)):
            return _non_fragmentable(
                "aggregation below the plan root cannot be merged at the coordinator"
            )

    attributes = output_attributes(query, schema)
    if attributes is None:
        return _non_fragmentable("output attributes are not statically determinable")
    # Per-shard top-k is sound pruning for a root ORDER BY + LIMIT, so the
    # shard query keeps the whole plan (including the OrderBy node); the
    # coordinator re-sorts the union and re-applies the limit.
    return FragmentPlan(
        SHARD_LOCAL,
        "single-relation scan: per-shard results union to the global bag",
        shard_query=query,
        attributes=attributes,
        distinct=isinstance(body, ast.Projection) and body.distinct,
        order=order,
    )


def _peel_root_order(
    query: ast.Query, schema: RelationalSchema
) -> tuple[ast.Query, OrderSpec | None, str | None]:
    """Split a root ``OrderBy`` off *query*; (body, spec, error)."""
    if not isinstance(query, ast.OrderBy):
        return query, None, None
    if not query.keys:
        if query.limit is not None:
            return query, None, (
                "LIMIT without ORDER BY keys selects nondeterministic rows "
                "across shards"
            )
        return query.query, None, None
    inner_attributes = output_attributes(query.query, schema)
    if inner_attributes is None:
        return query, None, "ORDER BY over statically unknown output attributes"
    indexes: list[int] = []
    for key in query.keys:
        if not isinstance(key, ast.AttributeRef):
            return query, None, "ORDER BY key is not a plain column reference"
        index = _resolve_attribute(key.name, inner_attributes)
        if index is None:
            return query, None, f"ORDER BY key {key.name!r} not found in output"
        indexes.append(index)
    spec = OrderSpec(tuple(indexes), tuple(query.ascending), query.limit)
    return query.query, spec, None


def _resolve_attribute(name: str, attributes: tuple[str, ...]) -> int | None:
    """Exact match first, then unique local-name match (SQL resolution)."""
    if name in attributes:
        return attributes.index(name)
    matches = [
        index
        for index, attribute in enumerate(attributes)
        if attribute.rsplit(".", 1)[-1] == name
    ]
    return matches[0] if len(matches) == 1 else None


def _classify_group_by(
    query: ast.Query,
    group: ast.GroupBy,
    order: OrderSpec | None,
    schema: RelationalSchema,
) -> FragmentPlan:
    if group.having != ast.TRUE:
        return _non_fragmentable(
            "HAVING filters on final aggregate values, unknown before the merge"
        )
    for node in iter_nodes(group.query):
        if isinstance(node, (ast.GroupBy, ast.Aggregate)):
            return _non_fragmentable(
                "nested aggregation below the grouping cannot be merged"
            )
    column_expressions = {column.expression for column in group.columns}
    for key in group.keys:
        if key not in column_expressions:
            return _non_fragmentable(
                "a grouping key is not in the output; partials cannot be re-grouped"
            )

    merge: list[MergeColumn] = []
    shard_columns: list[ast.OutputColumn] = []
    key_indexes: list[int] = []
    avg_serial = 0
    for column in group.columns:
        expression = column.expression
        source = len(shard_columns)
        if isinstance(expression, ast.Aggregate):
            if expression.function in ("Count", "Sum"):
                merge.append(MergeColumn(column.alias, "sum", source))
                shard_columns.append(column)
            elif expression.function in ("Min", "Max"):
                merge.append(
                    MergeColumn(column.alias, expression.function.lower(), source)
                )
                shard_columns.append(column)
            elif expression.function == "Avg":
                # Algebraic decomposition: shards emit the Sum and Count
                # partials under reserved aliases; the coordinator divides.
                assert expression.argument is not None
                merge.append(
                    MergeColumn(column.alias, "avg", source, count_source=source + 1)
                )
                shard_columns.append(
                    ast.OutputColumn(
                        f"{_AVG_SUM}{avg_serial}",
                        ast.Aggregate("Sum", expression.argument),
                    )
                )
                shard_columns.append(
                    ast.OutputColumn(
                        f"{_AVG_COUNT}{avg_serial}",
                        ast.Aggregate("Count", expression.argument),
                    )
                )
                avg_serial += 1
            else:  # pragma: no cover - Aggregate.VALID bounds the functions
                return _non_fragmentable(
                    f"aggregate {expression.function} has no merge rule"
                )
        elif expression in group.keys:
            key_indexes.append(source)
            merge.append(MergeColumn(column.alias, "key", source))
            shard_columns.append(column)
        else:
            return _non_fragmentable(
                "output column mixes aggregates into a non-key expression"
            )

    shard_query: ast.Query = ast.GroupBy(
        group.query, group.keys, tuple(shard_columns), group.having
    )
    # A root ORDER BY is *not* kept in the shard query: ordering (and
    # top-k pruning) by partial aggregate values would be unsound.  The
    # coordinator sorts the merged groups instead.
    return FragmentPlan(
        MERGE_AGGREGABLE,
        "distributive aggregates over one relation: partials fold at the coordinator",
        shard_query=shard_query,
        attributes=tuple(column.alias for column in group.columns),
        merge=tuple(merge),
        key_indexes=tuple(key_indexes),
        order=order,
    )


# ---------------------------------------------------------------------------
# Gather (the coordinator-side merge)
# ---------------------------------------------------------------------------


def merge_partials(plan: FragmentPlan, partials: list[Table]) -> Table:
    """Combine per-shard result tables into the global answer for *plan*."""
    if not plan.fragmentable or plan.shard_query is None:
        raise ValueError("cannot merge partials of a non-fragmentable plan")
    assert plan.attributes is not None
    if plan.kind == SHARD_LOCAL:
        rows: list[tuple[Value, ...]] = []
        for partial in partials:
            rows.extend(partial.rows)
        if plan.distinct:
            rows = _dedup_rows(rows)
    else:
        rows = _merge_groups(plan, partials)
    if plan.order is not None:
        rows = _apply_order(rows, plan.order)
    return Table(plan.attributes, rows, ordered=plan.order is not None)


def _merge_groups(plan: FragmentPlan, partials: list[Table]) -> list[tuple]:
    """Re-group partial aggregate rows by key tuple and fold each column.

    The folds skip NULL partials and yield NULL only when every partial is
    NULL — matching :func:`repro.common.aggregates.combine`, where an
    aggregate (Count included) over an all-NULL argument is NULL.  A group
    a shard has no rows for simply contributes no partial, which is also
    how the reference's Cypher grouping treats empty input (no groups).
    """
    groups: dict[tuple, list[tuple]] = {}
    for partial in partials:
        for row in partial.rows:
            key = tuple(row[index] for index in plan.key_indexes)
            groups.setdefault(key, []).append(row)
    merged: list[tuple] = []
    for group_rows in groups.values():
        out: list[Value] = []
        for column in plan.merge:
            partial_values = [row[column.source] for row in group_rows]
            if column.kind == "key":
                out.append(partial_values[0])
            elif column.kind == "avg":
                assert column.count_source is not None
                total = _fold_sum(partial_values)
                count = _fold_sum([row[column.count_source] for row in group_rows])
                if is_null(count) or is_null(total):
                    out.append(NULL)
                else:
                    out.append(total / count)
            elif column.kind == "sum":
                out.append(_fold_sum(partial_values))
            elif column.kind == "min":
                out.append(_fold_extremum(partial_values, min))
            else:
                out.append(_fold_extremum(partial_values, max))
        merged.append(tuple(out))
    return merged


def _fold_sum(values: list[Value]) -> Value:
    present = [value for value in values if not is_null(value)]
    if not present:
        return NULL
    total: Value = 0
    for value in present:
        total += value  # type: ignore[operator]
    return total


def _fold_extremum(values: list[Value], pick) -> Value:
    present = [value for value in values if not is_null(value)]
    return pick(present) if present else NULL


def _dedup_rows(rows: list[tuple]) -> list[tuple]:
    seen: set[tuple] = set()
    out: list[tuple] = []
    for row in rows:
        if row not in seen:
            seen.add(row)
            out.append(row)
    return out


class _Descending:
    """Inverts comparisons so one ascending sort serves DESC keys."""

    __slots__ = ("key",)

    def __init__(self, key: tuple) -> None:
        self.key = key

    def __lt__(self, other: "_Descending") -> bool:
        return other.key < self.key


def _apply_order(rows: list[tuple], order: OrderSpec) -> list[tuple]:
    """Sort (and limit) merged rows exactly like the reference ``OrderBy``."""

    def decorate(row: tuple) -> tuple:
        keys = []
        for index, ascending in zip(order.indexes, order.ascending):
            key = sort_key(row[index])
            keys.append(key if ascending else _Descending(key))
        return tuple(keys)

    ordered = sorted(rows, key=decorate)
    if order.limit is not None:
        ordered = ordered[: order.limit]
    return ordered


__all__ = [
    "FragmentPlan",
    "MergeColumn",
    "OrderSpec",
    "SHARD_LOCAL",
    "MERGE_AGGREGABLE",
    "NON_FRAGMENTABLE",
    "fragment_query",
    "merge_partials",
]
