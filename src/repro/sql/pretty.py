"""Rendering Featherweight SQL algebra to executable SQL text.

The transpiler produces nested relational algebra; this module lowers it to
a SQL string a relational engine accepts, used by the execution benchmarks
(paper Section 6.3 / Table 4), the :mod:`repro.backends` subsystem, and the
examples for display.  Engine-specific spelling (identifier quoting,
boolean/NULL literals, DDL types) is factored into
:class:`repro.sql.dialect.SqlDialect`; the default dialect is SQLite.

Column naming mirrors the reference evaluator exactly: qualified attribute
names like ``T1.c1_CID`` become *quoted identifiers* (``"T1.c1_CID"``), so
any attribute the evaluator can resolve has a well-defined rendering.  Each
operator becomes one ``SELECT`` layer over aliased subqueries.
"""

from __future__ import annotations

from itertools import count

from repro.common.errors import SemanticsError
from repro.common.values import is_null
from repro.relational.schema import RelationalSchema
from repro.sql import ast
from repro.sql.dialect import SQLITE, SqlDialect, dialect_for


def to_sql_text(
    query: ast.Query,
    schema: RelationalSchema,
    optimized: bool = True,
    dialect: str | SqlDialect = SQLITE,
) -> str:
    """Render *query* over *schema* as a single SELECT statement.

    With ``optimized`` (the default) the algebra is first simplified by
    :mod:`repro.sql.optimize`, collapsing the transpiler's one-node-per-rule
    nesting into compact SQL.  *dialect* selects the engine spelling
    (name or :class:`SqlDialect`; defaults to SQLite).
    """
    if optimized:
        from repro.sql.optimize import optimize

        query = optimize(query)
    renderer = _Renderer(schema, dialect_for(dialect))
    rendered = renderer.render(query, {})
    return rendered.text


def to_cte_sql(
    query: ast.Query,
    schema: RelationalSchema,
    dialect: str | SqlDialect = SQLITE,
) -> str:
    """Render with the paper's Figure-7 presentation: one CTE per renamed
    intermediate result (``WITH T1 AS (...), T2 AS (...) SELECT ...``).

    The transpiler's C-Match2/C-OptMatch rules wrap each clause side in a
    renaming ``ρ_T1``/``ρ_T2``; those become the CTEs, exactly as the paper
    displays its running example.  Purely a presentation alternative to
    :func:`to_sql_text` — both render the same algebra.
    """
    from repro.relational.schema import Relation
    from repro.sql.optimize import optimize

    dialect = dialect_for(dialect)
    query = optimize(query)
    cte_definitions: list[tuple[str, str, tuple[str, ...]]] = []
    extended_relations = list(schema.relations)
    used_names: set[str] = {relation.name for relation in schema.relations}

    def hoist_operand(node: ast.Query) -> ast.Query:
        """Turn a composite join operand into a CTE reference.

        Join trees over (renamed) base relations flatten into FROM lists,
        so only genuinely composite operands — projections, aggregations,
        unions — become CTEs, mirroring the paper's Figure-7 granularity.
        """
        if isinstance(node, (ast.Relation, ast.Join, ast.Selection)):
            return node
        if isinstance(node, ast.Renaming) and isinstance(node.query, ast.Relation):
            return node
        cte_name = _fresh_cte_name(f"T{len(cte_definitions) + 1}", used_names)
        used_names.add(cte_name)
        current_schema = RelationalSchema.of(extended_relations, schema.constraints)
        rendered = _Renderer(current_schema, dialect).render(node, {})
        columns = tuple(rendered.columns)
        extended_relations.append(Relation(cte_name, columns))
        cte_definitions.append((cte_name, rendered.text, columns))
        return ast.Relation(cte_name)

    def hoist(node: ast.Query) -> ast.Query:
        node = _hoist_children(node, hoist)
        if isinstance(node, ast.Join):
            return ast.Join(
                node.kind,
                hoist_operand(node.left),
                hoist_operand(node.right),
                node.predicate,
            )
        if isinstance(node, ast.Renaming) and not isinstance(node.query, ast.Relation):
            cte_name = _fresh_cte_name(node.name, used_names)
            used_names.add(cte_name)
            current_schema = RelationalSchema.of(extended_relations, schema.constraints)
            rendered = _Renderer(current_schema, dialect).render(node.query, {})
            columns = tuple(rendered.columns)
            extended_relations.append(Relation(cte_name, columns))
            cte_definitions.append((cte_name, rendered.text, columns))
            return ast.Renaming(node.name, ast.Relation(cte_name))
        return node

    hoisted = hoist(query)
    final_schema = RelationalSchema.of(extended_relations, schema.constraints)
    body = _Renderer(final_schema, dialect).render(hoisted, {}).text
    if not cte_definitions:
        return body
    clauses = ",\n".join(
        f"{dialect.quote(name)} AS ({text})" for name, text, _ in cte_definitions
    )
    return f"WITH {clauses}\n{body}"


def _fresh_cte_name(stem: str, used: set[str]) -> str:
    candidate = stem
    suffix = 0
    while candidate in used:
        suffix += 1
        candidate = f"{stem}_{suffix}"
    return candidate


def _hoist_children(node: ast.Query, hoist) -> ast.Query:
    return ast.map_children(node, hoist)


def create_table_ddl(
    schema: RelationalSchema,
    dialect: str | SqlDialect = SQLITE,
    column_types: dict[str, dict[str, str]] | None = None,
) -> list[str]:
    """``CREATE TABLE`` statements for every relation of *schema*.

    *column_types* optionally maps relation name → attribute → DDL type
    (typed dialects fall back to their default type when no hint exists;
    untyped dialects such as SQLite omit types entirely unless hinted).
    """
    dialect = dialect_for(dialect)
    statements = []
    for relation in schema.relations:
        hints = (column_types or {}).get(relation.name, {})
        columns = ", ".join(
            dialect.ddl_column(a, hints.get(a)) for a in relation.attributes
        )
        statements.append(
            f"CREATE TABLE {dialect.quote(relation.name)} ({columns})"
        )
    return statements


def _fold_with(clause: str, body_text: str, recursive: bool) -> str:
    """Prefix *body_text* with one more CTE definition, folding directly
    nested WITH clauses into a single comma-separated list.

    ``RECURSIVE`` may only appear once, immediately after ``WITH``, and then
    covers every definition in the list (recursive or not) — so the merged
    clause is marked recursive when either side is.
    """
    if body_text.startswith("WITH RECURSIVE "):
        rest = body_text[len("WITH RECURSIVE "):]
        recursive = True
    elif body_text.startswith("WITH "):
        rest = body_text[len("WITH "):]
    else:
        keyword = "WITH RECURSIVE" if recursive else "WITH"
        return f"{keyword} {clause} {body_text}"
    keyword = "WITH RECURSIVE" if recursive else "WITH"
    return f"{keyword} {clause}, {rest}"


class _Rendered:
    """A rendered subquery: its SQL text and output column names."""

    __slots__ = ("text", "columns")

    def __init__(self, text: str, columns: list[str]) -> None:
        self.text = text
        self.columns = columns


class _FromScope:
    """Scope over a flattened FROM clause: column → rendered fragment."""

    def __init__(self, fragments: dict[str, str]) -> None:
        self.fragments = fragments
        self.columns = list(fragments)

    def resolve(self, name: str) -> str:
        if name in self.fragments:
            return self.fragments[name]
        local_matches = [
            c for c in self.fragments if c.rsplit(".", 1)[-1] == name
        ]
        if len(local_matches) == 1:
            return self.fragments[local_matches[0]]
        if len(local_matches) > 1:
            raise SemanticsError(f"ambiguous attribute reference {name!r}")
        raise SemanticsError(f"unknown attribute reference {name!r}")


class _Source:
    """A flattened FROM clause with its column scope.

    *predicates* are rendered filter fragments collected from ``Selection``
    nodes flattened inside the join tree; the enclosing SELECT layer must
    AND them into its WHERE clause (they are always safe there — see
    :meth:`_Renderer._as_source`).
    """

    __slots__ = ("from_sql", "scope", "dialect", "predicates")

    def __init__(
        self,
        from_sql: str,
        scope: _FromScope,
        dialect: SqlDialect = SQLITE,
        predicates: list[str] | None = None,
    ) -> None:
        self.from_sql = from_sql
        self.scope = scope
        self.dialect = dialect
        self.predicates = predicates or []

    @property
    def columns(self) -> list[str]:
        return self.scope.columns

    def select_all(self) -> str:
        return ", ".join(
            f"{fragment} AS {self.dialect.quote(column)}"
            for column, fragment in self.scope.fragments.items()
        )


class _Renderer:
    def __init__(self, schema: RelationalSchema, dialect: SqlDialect = SQLITE) -> None:
        self.schema = schema
        self.dialect = dialect
        self._q = dialect.quote
        self._alias = count(1)
        #: Enclosing row scopes for correlated subqueries (innermost last).
        self._outer: list["_Scope"] = []

    def _fresh(self) -> str:
        return f"sub{next(self._alias)}"

    def _resolve(self, name: str, scope) -> str:
        """Resolve against *scope*, falling back to enclosing scopes."""
        candidates = [scope] + list(reversed(self._outer))
        for candidate in candidates:
            try:
                return candidate.resolve(name)
            except SemanticsError as error:
                if "ambiguous" in str(error):
                    raise
        raise SemanticsError(f"unknown attribute reference {name!r}")

    # -- flattened FROM clauses ----------------------------------------------

    def _as_source(self, query: ast.Query, ctes: dict[str, _Rendered]) -> "_Source | None":
        """Flatten *query* into a FROM clause when it is a join tree over
        (renamed, possibly filtered) base relations; ``None`` when a
        subselect is required.

        ``Selection`` nodes inside the tree flatten too: their predicates
        travel upward as pending WHERE fragments.  That is sound because a
        filter on the *left* input of a CROSS/INNER/LEFT join commutes with
        the join (its columns survive unchanged), and a filter on the
        *right* input of a LEFT join folds into the ON condition
        (``A ⟕_q σ_p(B) ≡ A ⟕_{q∧p} B``).
        """
        if isinstance(query, ast.Selection):
            source = self._as_source(query.query, ctes)
            if source is None:
                return None
            predicate = self._predicate(query.predicate, source.scope, ctes)
            return _Source(
                source.from_sql,
                source.scope,
                self.dialect,
                source.predicates + [predicate],
            )
        if isinstance(query, ast.Relation):
            # A CTE in scope is referenced like a base table: FROM "name".
            # (For WITH RECURSIVE this is not merely nicer SQL — the
            # recursive self-reference is only legal as a bare table name
            # in the recursive select's FROM clause, never in a subquery.)
            cte = ctes.get(query.name)
            attributes = (
                tuple(cte.columns)
                if cte is not None
                else self.schema.relation(query.name).attributes
            )
            fragments = {
                attribute: f"{self._q(query.name)}.{self._q(attribute)}"
                for attribute in attributes
            }
            return _Source(self._q(query.name), _FromScope(fragments), self.dialect)
        if isinstance(query, ast.Renaming) and isinstance(query.query, ast.Relation):
            cte = ctes.get(query.query.name)
            if cte is not None:
                fragments = {
                    f"{query.name}.{column.replace('.', '_')}":
                        f"{self._q(query.name)}.{self._q(column)}"
                    for column in cte.columns
                }
                from_sql = f"{self._q(query.query.name)} AS {self._q(query.name)}"
                return _Source(from_sql, _FromScope(fragments), self.dialect)
            relation = self.schema.relation(query.query.name)
            fragments = {
                f"{query.name}.{attribute}": f"{self._q(query.name)}.{self._q(attribute)}"
                for attribute in relation.attributes
            }
            from_sql = f"{self._q(query.query.name)} AS {self._q(query.name)}"
            return _Source(from_sql, _FromScope(fragments), self.dialect)
        if isinstance(query, ast.Join) and query.kind in (
            ast.JoinKind.CROSS,
            ast.JoinKind.INNER,
            ast.JoinKind.LEFT,
        ):
            left = self._as_source(query.left, ctes)
            if left is None:
                return None
            right = self._as_source(query.right, ctes)
            if right is None:
                return None
            overlap = set(left.scope.fragments) & set(right.scope.fragments)
            if overlap:
                return None
            fragments = dict(left.scope.fragments)
            fragments.update(right.scope.fragments)
            scope = _FromScope(fragments)
            pending = list(left.predicates)
            if query.kind is ast.JoinKind.CROSS:
                pending += right.predicates
                from_sql = f"{left.from_sql} CROSS JOIN {right.from_sql}"
            else:
                keyword = "JOIN" if query.kind is ast.JoinKind.INNER else "LEFT JOIN"
                on_parts = [self._predicate(query.predicate, scope, ctes)]
                if query.kind is ast.JoinKind.LEFT:
                    # Right-input filters must not survive to WHERE (they
                    # would kill null-padded rows); fold them into ON.
                    on_parts += right.predicates
                else:
                    pending += right.predicates
                from_sql = (
                    f"{left.from_sql} {keyword} {right.from_sql} "
                    f"ON {' AND '.join(on_parts)}"
                )
            return _Source(from_sql, scope, self.dialect, pending)
        return None

    def _source_of(self, query: ast.Query, ctes: dict[str, _Rendered]) -> "_Source":
        """A source for any query: flattened when possible, else a subselect."""
        source = self._as_source(query, ctes)
        if source is not None:
            return source
        rendered = self.render(query, ctes)
        alias = self._fresh()
        fragments = {
            column: f"{alias}.{self._q(column)}" for column in rendered.columns
        }
        return _Source(
            f"({rendered.text}) AS {alias}", _FromScope(fragments), self.dialect
        )

    def _split_selection(
        self, query: ast.Query, ctes: dict[str, _Rendered]
    ) -> tuple["_Source", str]:
        """Source plus rendered WHERE text ("" when no selection applies)."""
        if isinstance(query, ast.Selection):
            source = self._source_of(query.query, ctes)
            predicate = self._predicate(query.predicate, source.scope, ctes)
            return source, self._where_of(source, predicate)
        source = self._source_of(query, ctes)
        return source, self._where_of(source)

    @staticmethod
    def _where_of(source: "_Source", extra: str = "") -> str:
        """AND-combine the source's pending filters with *extra* ("" = none)."""
        parts = source.predicates + ([extra] if extra else [])
        return " AND ".join(parts)

    # -- queries -----------------------------------------------------------

    def render(self, query: ast.Query, ctes: dict[str, _Rendered]) -> _Rendered:
        if isinstance(query, ast.Relation):
            return self._render_relation(query, ctes)
        if isinstance(query, ast.Projection):
            return self._render_projection(query, ctes)
        if isinstance(query, ast.Selection):
            return self._render_selection(query, ctes)
        if isinstance(query, ast.Renaming):
            return self._render_renaming(query, ctes)
        if isinstance(query, ast.Join):
            return self._render_join(query, ctes)
        if isinstance(query, ast.UnionOp):
            return self._render_union(query, ctes)
        if isinstance(query, ast.GroupBy):
            return self._render_group_by(query, ctes)
        if isinstance(query, ast.WithQuery):
            return self._render_with(query, ctes)
        if isinstance(query, ast.RecursiveQuery):
            return self._render_recursive(query, ctes)
        if isinstance(query, ast.OrderBy):
            return self._render_order_by(query, ctes)
        raise SemanticsError(f"cannot render query node {type(query).__name__}")

    def _render_relation(self, query: ast.Relation, ctes: dict[str, _Rendered]) -> _Rendered:
        cte = ctes.get(query.name)
        if cte is not None:
            return cte
        relation = self.schema.relation(query.name)
        columns = list(relation.attributes)
        select = ", ".join(f"{self._q(a)}" for a in columns)
        return _Rendered(f"SELECT {select} FROM {self._q(query.name)}", columns)

    def _render_projection(self, query: ast.Projection, ctes: dict[str, _Rendered]) -> _Rendered:
        source, where = self._split_selection(query.query, ctes)
        parts = [
            f"{self._expression(c.expression, source.scope)} AS {self._q(c.alias)}"
            for c in query.columns
        ]
        keyword = "SELECT DISTINCT" if query.distinct else "SELECT"
        text = f"{keyword} {', '.join(parts)} FROM {source.from_sql}"
        if where:
            text += f" WHERE {where}"
        return _Rendered(text, [c.alias for c in query.columns])

    def _render_selection(self, query: ast.Selection, ctes: dict[str, _Rendered]) -> _Rendered:
        source = self._source_of(query.query, ctes)
        predicate = self._predicate(query.predicate, source.scope, ctes)
        where = self._where_of(source, predicate)
        text = (
            f"SELECT {source.select_all()} FROM {source.from_sql} WHERE {where}"
        )
        return _Rendered(text, source.columns)

    def _render_renaming(self, query: ast.Renaming, ctes: dict[str, _Rendered]) -> _Rendered:
        if isinstance(query.query, ast.Relation) and query.query.name in ctes:
            # ρ_T over a CTE renders in one layer too: FROM cte AS T.  The
            # bare reference is mandatory for recursive self-references.
            cte = ctes[query.query.name]
            new_columns = [f"{query.name}.{c.replace('.', '_')}" for c in cte.columns]
            parts = [
                f"{self._q(query.name)}.{self._q(old)} AS {self._q(new)}"
                for old, new in zip(cte.columns, new_columns)
            ]
            text = (
                f"SELECT {', '.join(parts)} FROM {self._q(query.query.name)} "
                f"AS {self._q(query.name)}"
            )
            return _Rendered(text, new_columns)
        if isinstance(query.query, ast.Relation) and query.query.name not in ctes:
            # ρ_T over a base relation renders in one layer: FROM t AS T.
            relation = self.schema.relation(query.query.name)
            new_columns = [f"{query.name}.{a}" for a in relation.attributes]
            parts = [
                f"{self._q(query.name)}.{self._q(old)} AS {self._q(new)}"
                for old, new in zip(relation.attributes, new_columns)
            ]
            text = (
                f"SELECT {', '.join(parts)} FROM {self._q(query.query.name)} "
                f"AS {self._q(query.name)}"
            )
            return _Rendered(text, new_columns)
        inner = self.render(query.query, ctes)
        alias = self._fresh()
        new_columns = [f"{query.name}.{c.replace('.', '_')}" for c in inner.columns]
        parts = [
            f"{alias}.{self._q(old)} AS {self._q(new)}"
            for old, new in zip(inner.columns, new_columns)
        ]
        text = f"SELECT {', '.join(parts)} FROM ({inner.text}) AS {alias}"
        return _Rendered(text, new_columns)

    def _render_join(self, query: ast.Join, ctes: dict[str, _Rendered]) -> _Rendered:
        flattened = self._as_source(query, ctes)
        if flattened is not None:
            text = f"SELECT {flattened.select_all()} FROM {flattened.from_sql}"
            if flattened.predicates:
                text += f" WHERE {self._where_of(flattened)}"
            return _Rendered(text, flattened.columns)
        left = self.render(query.left, ctes)
        right = self.render(query.right, ctes)
        left_alias = self._fresh()
        right_alias = self._fresh()
        columns = left.columns + right.columns
        scope = _JoinScope(
            left_alias, left.columns, right_alias, right.columns, self.dialect
        )
        select = ", ".join(
            f"{left_alias}.{self._q(c)} AS {self._q(c)}" for c in left.columns
        )
        select += ", " + ", ".join(
            f"{right_alias}.{self._q(c)} AS {self._q(c)}" for c in right.columns
        )
        if query.kind is ast.JoinKind.CROSS:
            join_sql = (
                f"({left.text}) AS {left_alias} CROSS JOIN ({right.text}) AS {right_alias}"
            )
        else:
            keyword = {
                ast.JoinKind.INNER: "JOIN",
                ast.JoinKind.LEFT: "LEFT JOIN",
                ast.JoinKind.RIGHT: "RIGHT JOIN",
                ast.JoinKind.FULL: "FULL JOIN",
            }[query.kind]
            predicate = self._predicate(query.predicate, scope, ctes)
            join_sql = (
                f"({left.text}) AS {left_alias} {keyword} ({right.text}) "
                f"AS {right_alias} ON {predicate}"
            )
        return _Rendered(f"SELECT {select} FROM {join_sql}", columns)

    def _render_with(self, query: ast.WithQuery, ctes: dict[str, _Rendered]) -> _Rendered:
        """``With(Q1, R, Q2)`` as a real ``WITH R AS (...)`` clause.

        Every later reference to *R* renders as a scan of the CTE name, so
        engines evaluate the definition once (hash-consed subplans rely on
        this).  Directly nested ``WithQuery`` bodies fold into one comma-
        separated WITH clause; a WITH-prefixed subquery is legal wherever
        the body would otherwise appear (SQLite, DuckDB, MySQL 8, ANSI).
        """
        definition = self.render(query.definition, ctes)
        reference = "SELECT " + ", ".join(
            f"{self._q(query.name)}.{self._q(c)} AS {self._q(c)}"
            for c in definition.columns
        ) + f" FROM {self._q(query.name)}"
        extended = dict(ctes)
        extended[query.name] = _Rendered(reference, definition.columns)
        body = self.render(query.body, extended)
        clause = f"{self._q(query.name)} AS ({definition.text})"
        return _Rendered(_fold_with(clause, body.text, recursive=False), body.columns)

    def _render_recursive(self, query: ast.RecursiveQuery, ctes: dict[str, _Rendered]) -> _Rendered:
        """``WithRec(R, base, step, body)`` as ``WITH RECURSIVE R(...) AS
        (base UNION step) body``.

        Inside *step* and *body* the binding is in scope like any CTE; the
        flattened-FROM machinery references it by bare name, which is what
        the engines' recursive selects require (the self-reference must not
        sit inside a subquery).
        """
        base = self.render(query.base, ctes)
        reference = (
            "SELECT "
            + ", ".join(
                f"{self._q(query.name)}.{self._q(c)} AS {self._q(c)}"
                for c in query.columns
            )
            + f" FROM {self._q(query.name)}"
        )
        extended = dict(ctes)
        extended[query.name] = _Rendered(reference, list(query.columns))
        step = self.render(query.step, extended)
        body = self.render(query.body, extended)
        keyword = "UNION ALL" if query.union_all else "UNION"
        columns = ", ".join(self._q(c) for c in query.columns)
        clause = (
            f"{self._q(query.name)}({columns}) AS "
            f"({base.text} {keyword} {step.text})"
        )
        return _Rendered(_fold_with(clause, body.text, recursive=True), body.columns)

    def _render_union(self, query: ast.UnionOp, ctes: dict[str, _Rendered]) -> _Rendered:
        left = self.render(query.left, ctes)
        right = self.render(query.right, ctes)
        keyword = "UNION ALL" if query.all else "UNION"
        left_alias = self._fresh()
        right_alias = self._fresh()
        left_sql = "SELECT " + ", ".join(
            f"{left_alias}.{self._q(c)}" for c in left.columns
        ) + f" FROM ({left.text}) AS {left_alias}"
        right_sql = "SELECT " + ", ".join(
            f"{right_alias}.{self._q(c)}" for c in right.columns
        ) + f" FROM ({right.text}) AS {right_alias}"
        return _Rendered(f"{left_sql} {keyword} {right_sql}", left.columns)

    def _render_group_by(self, query: ast.GroupBy, ctes: dict[str, _Rendered]) -> _Rendered:
        source, where = self._split_selection(query.query, ctes)
        parts = [
            f"{self._expression(c.expression, source.scope)} AS {self._q(c.alias)}"
            for c in query.columns
        ]
        text = f"SELECT {', '.join(parts)} FROM {source.from_sql}"
        if where:
            text += f" WHERE {where}"
        if query.keys:
            keys = ", ".join(self._expression(k, source.scope) for k in query.keys)
            text += f" GROUP BY {keys}"
        if query.having != ast.TRUE:
            having = self._predicate(query.having, source.scope, ctes)
            text += f" HAVING {having}"
        return _Rendered(text, [c.alias for c in query.columns])

    def _render_order_by(self, query: ast.OrderBy, ctes: dict[str, _Rendered]) -> _Rendered:
        source = self._source_of(query.query, ctes)
        text = f"SELECT {source.select_all()} FROM {source.from_sql}"
        if source.predicates:
            text += f" WHERE {self._where_of(source)}"
        if query.keys:
            keys = ", ".join(
                f"{self._expression(k, source.scope)} {'ASC' if asc else 'DESC'}"
                for k, asc in zip(query.keys, query.ascending)
            )
            text += f" ORDER BY {keys}"
        if query.limit is not None:
            text += f" LIMIT {query.limit}"
        return _Rendered(text, source.columns)

    # -- expressions ---------------------------------------------------------

    def _expression(self, expression: ast.Expression, scope: "_Scope") -> str:
        if isinstance(expression, ast.AttributeRef):
            return self._resolve(expression.name, scope)
        if isinstance(expression, ast.Literal):
            return self.dialect.literal(expression.value)
        if isinstance(expression, ast.Aggregate):
            function = expression.function.upper()
            if expression.argument is None:
                return "COUNT(*)"
            inner = self._expression(expression.argument, scope)
            if expression.distinct:
                inner = f"DISTINCT {inner}"
            return f"{function}({inner})"
        if isinstance(expression, ast.BinaryOp):
            left = self._expression(expression.left, scope)
            right = self._expression(expression.right, scope)
            return f"({left} {expression.op} {right})"
        if isinstance(expression, ast.CastPredicate):
            predicate = self._predicate(expression.predicate, scope, {})
            return (
                f"(CASE WHEN {predicate} THEN 1 "
                f"WHEN NOT ({predicate}) THEN 0 ELSE NULL END)"
            )
        raise SemanticsError(
            f"cannot render expression node {type(expression).__name__}"
        )

    def _predicate(
        self, predicate: ast.Predicate, scope: "_Scope", ctes: dict[str, _Rendered]
    ) -> str:
        if isinstance(predicate, ast.BoolLit):
            return self.dialect.boolean(predicate.value)
        if isinstance(predicate, ast.Comparison):
            left = self._expression(predicate.left, scope)
            right = self._expression(predicate.right, scope)
            return f"{left} {predicate.op} {right}"
        if isinstance(predicate, ast.IsNull):
            operand = self._expression(predicate.operand, scope)
            suffix = "IS NOT NULL" if predicate.negated else "IS NULL"
            return f"{operand} {suffix}"
        if isinstance(predicate, ast.InValues):
            operand = self._expression(predicate.operand, scope)
            values = ", ".join(self.dialect.literal(v) for v in predicate.values)
            return f"{operand} IN ({values})"
        if isinstance(predicate, ast.InQuery):
            operands = ", ".join(self._expression(e, scope) for e in predicate.operands)
            self._outer.append(scope)
            try:
                sub = self.render(predicate.query, ctes)
            finally:
                self._outer.pop()
            keyword = "NOT IN" if predicate.negated else "IN"
            if len(predicate.operands) == 1:
                return f"{operands} {keyword} ({sub.text})"
            return f"({operands}) {keyword} (SELECT * FROM ({sub.text}))"
        if isinstance(predicate, ast.ExistsQuery):
            self._outer.append(scope)
            try:
                sub = self.render(predicate.query, ctes)
            finally:
                self._outer.pop()
            keyword = "NOT EXISTS" if predicate.negated else "EXISTS"
            return f"{keyword} ({sub.text})"
        if isinstance(predicate, ast.And):
            return (
                f"({self._predicate(predicate.left, scope, ctes)} AND "
                f"{self._predicate(predicate.right, scope, ctes)})"
            )
        if isinstance(predicate, ast.Or):
            return (
                f"({self._predicate(predicate.left, scope, ctes)} OR "
                f"{self._predicate(predicate.right, scope, ctes)})"
            )
        if isinstance(predicate, ast.Not):
            return f"NOT ({self._predicate(predicate.operand, scope, ctes)})"
        raise SemanticsError(
            f"cannot render predicate node {type(predicate).__name__}"
        )


class _Scope:
    """Resolves attribute references to quoted, alias-qualified columns."""

    def __init__(
        self, alias: str, columns: list[str], dialect: SqlDialect = SQLITE
    ) -> None:
        self.alias = alias
        self.columns = columns
        self.dialect = dialect

    def resolve(self, name: str) -> str:
        if name in self.columns:
            return f"{self.alias}.{self.dialect.quote(name)}"
        local_matches = [c for c in self.columns if c.rsplit(".", 1)[-1] == name]
        if len(local_matches) == 1:
            return f"{self.alias}.{self.dialect.quote(local_matches[0])}"
        if len(local_matches) > 1:
            raise SemanticsError(f"ambiguous attribute reference {name!r}")
        raise SemanticsError(f"unknown attribute reference {name!r}")


class _JoinScope(_Scope):
    """Two-sided scope for join predicates."""

    def __init__(
        self,
        left_alias: str,
        left_columns: list[str],
        right_alias: str,
        right_columns: list[str],
        dialect: SqlDialect = SQLITE,
    ) -> None:
        self.left = _Scope(left_alias, left_columns, dialect)
        self.right = _Scope(right_alias, right_columns, dialect)
        self.columns = left_columns + right_columns
        self.alias = left_alias
        self.dialect = dialect

    def resolve(self, name: str) -> str:
        for side in (self.left, self.right):
            try:
                return side.resolve(name)
            except SemanticsError as error:
                if "ambiguous" in str(error):
                    raise
        raise SemanticsError(f"unknown attribute reference {name!r}")


def _quote(identifier: str) -> str:
    """Legacy helper: quote in the default (SQLite) dialect."""
    return SQLITE.quote(identifier)


def _literal(value) -> str:
    """Legacy helper: render a literal in the default (SQLite) dialect."""
    if is_null(value):
        return SQLITE.null_literal
    return SQLITE.literal(value)
