"""Cross-backend execution comparison (beyond the paper: multi-engine).

Runs the standard workload (scan / join / aggregate / optional / exists)
over mock data on every execution backend available in this environment —
in-memory SQLite, file-backed SQLite, and DuckDB when installed — and
reports per-backend timings.  Every measured result is cross-checked for
bag equivalence against the reference evaluator on a small instance, so a
backend that returns wrong answers fails the bench rather than winning it.

Run:  pytest benchmarks/bench_backends.py --benchmark-only -s
"""

from repro.backends import available_backends, compare_backends


def test_bench_backends(benchmark, report_rows):
    rows = benchmark.pedantic(
        compare_backends,
        kwargs={"rows_per_table": 2000, "repeats": 3},
        iterations=1,
        rounds=1,
    )
    report_rows.append(
        f"== Backend comparison: {', '.join(available_backends())} =="
    )
    for row in rows:
        report_rows.append(row.format())
    # Both SQLite variants are always present; DuckDB joins when installed.
    measured_backends = {row.backend for row in rows}
    assert {"sqlite-memory", "sqlite-file"} <= measured_backends
    assert all(row.matches_reference for row in rows)
    assert all(row.seconds >= 0.0 for row in rows)
