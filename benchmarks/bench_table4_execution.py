"""Table 4 — execution time of transpiled vs manually-written SQL.

For the StackOverflow + Tutorial + Academic benchmarks (the categories with
"ground truth" hand-written SQL), populates paired mock instances — an
induced-schema instance and its residual-transformer image — and measures
SQLite execution of the transpiled query against the manual one.

Paper shape: transpiled queries are faster on a third of the benchmarks and
within a 1.2x slowdown on most of the rest.  (The paper scales tables to
10k-1M rows on a commercial RDBMS; the default here is smaller so the bench
finishes quickly — pass a bigger ``rows_per_table`` to approach that scale.)
"""

from repro.benchmarks.evaluation import table4_execution


def test_table4_execution(benchmark, report_rows):
    rows = benchmark.pedantic(
        table4_execution,
        kwargs={"rows_per_table": 3000, "repeats": 3},
        iterations=1,
        rounds=1,
    )
    report_rows.append("== Table 4: transpiled vs manual execution time ==")
    for row in rows:
        report_rows.append(row.format())
    total = rows[-1]
    assert total.count == 45
    # Most transpiled queries stay within a modest slowdown of the manual
    # ones; a substantial share is outright faster.
    competitive = total.transpiled_faster + total.slower_within_1_1 + total.slower_within_1_2
    assert competitive >= 0.4
