"""Ablations for the design choices DESIGN.md calls out.

Three knobs distinguish this reproduction's checkers from naive baselines;
each ablation removes one and measures the damage on the benchmark suite:

* **A1 — constraint-aware tableau rewrites** (deductive backend): without
  primary-key self-join collapse and foreign-key lookup elimination, the
  transpiled query (which re-joins tables the hand-written SQL elides) is
  never structurally isomorphic to the manual one, so the verified count
  collapses.
* **A2 — constant seeding** (bounded backend): without injecting query
  constants into the generated value domains, selective predicates such as
  ``CID = 1`` or the Figure-23 cross-attribute join at 10 are unreachable,
  so several planted bugs stop being refuted.
* **A3 — counterexample shrinking** (bounded backend): without greedy row
  removal the witnesses are several times larger than the paper-style
  minimal instances.
"""

import statistics

from repro.benchmarks.suite import benchmark_suite, benchmarks_by_category
from repro.checkers.base import Verdict
from repro.checkers.bounded import BoundedChecker
from repro.checkers.deductive import DeductiveChecker
from repro.core.equivalence import check_equivalence


def _run(benchmarks, checker):
    return [
        check_equivalence(
            b.graph_schema,
            b.cypher_query,
            b.relational_schema,
            b.sql_query,
            b.transformer,
            checker,
        )
        for b in benchmarks
    ]


def test_ablation_tableau_rewrites(benchmark, report_rows):
    """A1: verified count on the Mediator category with/without rewrites."""
    mediator = benchmarks_by_category()["Mediator"]

    def run():
        with_rewrites = sum(
            1
            for r in _run(mediator, DeductiveChecker(time_budget_seconds=5.0))
            if r.verdict is Verdict.EQUIVALENT
        )
        without_rewrites = sum(
            1
            for r in _run(
                mediator,
                DeductiveChecker(time_budget_seconds=5.0, enable_simplification=False),
            )
            if r.verdict is Verdict.EQUIVALENT
        )
        return with_rewrites, without_rewrites

    with_rewrites, without_rewrites = benchmark.pedantic(run, iterations=1, rounds=1)
    report_rows.append("== Ablation A1: constraint-aware tableau rewrites ==")
    report_rows.append(
        f"Mediator verified: {with_rewrites}/100 with rewrites, "
        f"{without_rewrites}/100 without"
    )
    assert with_rewrites == 77
    assert without_rewrites < with_rewrites


def test_ablation_constant_seeding(benchmark, report_rows):
    """A2: refuted bug count with/without constant seeding."""
    bugs = [b for b in benchmark_suite() if not b.expected_equivalent]

    def run():
        seeded = sum(
            1
            for r in _run(
                bugs,
                BoundedChecker(
                    max_bound=3, samples_per_bound=150, time_budget_seconds=4.0, seed=11
                ),
            )
            if r.verdict is Verdict.NOT_EQUIVALENT
        )
        unseeded = sum(
            1
            for r in _run(
                bugs,
                BoundedChecker(
                    max_bound=3,
                    samples_per_bound=150,
                    time_budget_seconds=4.0,
                    seed=11,
                    enable_constant_seeding=False,
                ),
            )
            if r.verdict is Verdict.NOT_EQUIVALENT
        )
        return seeded, unseeded

    seeded, unseeded = benchmark.pedantic(run, iterations=1, rounds=1)
    report_rows.append("== Ablation A2: constant seeding ==")
    report_rows.append(
        f"bugs refuted: {seeded}/34 with seeding, {unseeded}/34 without"
    )
    assert seeded == 34
    assert unseeded <= seeded


def test_ablation_shrinking(benchmark, report_rows):
    """A3: average counterexample size with/without shrinking."""
    bugs = [b for b in benchmark_suite() if not b.expected_equivalent][:12]

    def run():
        def sizes(enable):
            checker = BoundedChecker(
                max_bound=3,
                samples_per_bound=150,
                time_budget_seconds=4.0,
                seed=11,
                enable_shrinking=enable,
            )
            rows = []
            for result in _run(bugs, checker):
                if result.counterexample is not None:
                    rows.append(result.counterexample.induced_database.total_rows())
            return statistics.mean(rows) if rows else 0.0

        return sizes(True), sizes(False)

    shrunk, raw = benchmark.pedantic(run, iterations=1, rounds=1)
    report_rows.append("== Ablation A3: counterexample shrinking ==")
    report_rows.append(
        f"avg witness size: {shrunk:.1f} rows shrunk vs {raw:.1f} rows raw"
    )
    assert shrunk <= raw
