"""Table 2 — results of bounded equivalence checking.

Runs the VeriEQL-substitute bounded model checker over all 410 benchmarks
and reports, per category: the number of refuted (non-equivalent) pairs,
the average bound reached for the rest, and the average refutation time.

Shape targets from the paper: 34 refuted in total (1/1/1/4/0/27 per
category), refutations fast relative to the verification budget.
"""

from repro.benchmarks.evaluation import table2_bounded


def test_table2_bounded(benchmark, report_rows):
    rows = benchmark.pedantic(
        table2_bounded,
        kwargs={
            "max_bound": 4,
            "samples_per_bound": 200,
            "time_budget_seconds": 5.0,
        },
        iterations=1,
        rounds=1,
    )
    report_rows.append("== Table 2: bounded equivalence checking ==")
    for row in rows:
        report_rows.append(row.format())
    by_name = {row.dataset: row for row in rows}
    assert by_name["Total"].non_equivalent == 34
    assert by_name["StackOverflow"].non_equivalent == 1
    assert by_name["Tutorial"].non_equivalent == 1
    assert by_name["Academic"].non_equivalent == 1
    assert by_name["VeriEQL"].non_equivalent == 4
    assert by_name["Mediator"].non_equivalent == 0
    assert by_name["GPT-Translate"].non_equivalent == 27
    assert by_name["Total"].avg_checked_bound >= 1
