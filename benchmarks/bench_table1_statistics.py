"""Table 1 — statistics of Cypher and SQL queries in the benchmarks.

Regenerates the per-category AST-size and transformer-size statistics for
all 410 benchmarks.  Sizes are AST-node counts as in the paper; absolute
values depend on AST granularity, but the shape — Cypher queries larger
than their SQL counterparts, transformers a handful of rules — matches.
"""

from repro.benchmarks.evaluation import table1_statistics


def test_table1_statistics(benchmark, report_rows):
    rows = benchmark(table1_statistics)
    report_rows.append("== Table 1: benchmark statistics ==")
    for row in rows:
        report_rows.append(row.format())
    total = rows[-1]
    assert total.count == 410
    # Transformer sizes stay small (the paper reports avg 5.9 rules).
    assert total.tf_avg < 10
