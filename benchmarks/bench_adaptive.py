"""Adaptive-execution benchmark: feedback re-planning vs a static plan.

Thin entry point over :mod:`repro.backends.adaptive_bench`.  Persists the
tracked baseline ``BENCH_adaptive.json`` at the repo root: a deliberately
mis-estimated workload (statistics collected on a small uniform instance,
then the live data swapped for a hub-skewed ``FOLLOWS`` graph) served by a
static lane (feedback disabled — the mis-chosen unrolled plan forever)
and an adaptive lane (estimate-vs-actual feedback on — statistics refresh
at epoch 1, traversal forced recursive at epoch 2), plus a feedback-off
vs feedback-on overhead lane on a well-estimated workload that must stay
inside the <5% serving-overhead budget.  Every executed result in every
lane is bag-equivalence-gated against the reference evaluator.

Run directly::

    python benchmarks/bench_adaptive.py [--users N] [--executions E] [--quick]

or under pytest (asserts the correctness gates, that a re-plan actually
triggered, and that the converged plan beats the static lane)::

    pytest benchmarks/bench_adaptive.py --benchmark-only -s
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.backends.adaptive_bench import format_report, run_bench

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_adaptive.json"


def test_bench_adaptive(benchmark, report_rows, tmp_path):
    report = benchmark.pedantic(
        run_bench,
        kwargs={
            "users": 60,
            "hubs": 8,
            "hub_edges": 200,
            "stale_rows": 40,
            "executions": 10,
            "overhead_rows": 200,
            "overhead_batch": 20,
            "overhead_repeats": 8,
            # Keep the committed baseline intact; pytest runs are smoke.
            "out_path": tmp_path / "BENCH_adaptive.json",
        },
        iterations=1,
        rounds=1,
    )
    report_rows.extend(format_report(report))
    summary = report["summary"]
    assert summary["all_results_valid"]
    # The mis-estimated workload must actually trigger the feedback loop…
    assert summary["replanned"]
    # …and converge on the incremental-frontier plan the skew demands.
    assert summary["converged_choice"] == "recursive"
    assert report["adaptive"]["final_epoch"] >= 1
    # The well-estimated overhead workload must never re-plan.
    assert not report["overhead"]["spurious_replans"]
    # Converged plan beats the static mis-plan (the gap is ~3-4x on this
    # skew; 1.2 leaves headroom for noisy CI hosts).
    assert summary["speedup_converged_vs_static"] > 1.2
    # Observation-path overhead: 3x budget tolerated under CI noise, as in
    # the guard-overhead smoke.
    assert report["overhead"]["feedback_overhead_pct"] <= 3 * report["overhead"]["budget_pct"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--users", type=int, default=100, help="total users")
    parser.add_argument("--hubs", type=int, default=12, help="hub-core size")
    parser.add_argument(
        "--hub-edges", type=int, default=480, help="edges inside the hub core"
    )
    parser.add_argument(
        "--stale-rows",
        type=int,
        default=60,
        help="rows per table in the small instance the stale stats describe",
    )
    parser.add_argument(
        "--executions", type=int, default=12, help="servings per lane"
    )
    parser.add_argument(
        "--backend", default="sqlite-memory", help="execution backend"
    )
    parser.add_argument(
        "--quick", action="store_true", help="smaller graph/lanes (CI smoke)"
    )
    parser.add_argument(
        "--out", type=Path, default=DEFAULT_OUT, help="output JSON path"
    )
    arguments = parser.parse_args(argv)
    from repro.backends import BackendUnavailable

    try:
        report = _run(arguments)
    except BackendUnavailable as error:
        print(error, file=sys.stderr)
        return 1
    print("\n".join(format_report(report)))
    print(f"wrote {arguments.out}")
    # Exit status reflects correctness and the adaptive story — not raw
    # latency numbers, which depend on the host.
    summary = report["summary"]
    failed = not (
        summary["all_results_valid"]
        and summary["replanned"]
        and summary["converged_choice"] == "recursive"
    )
    return 1 if failed else 0


def _run(arguments) -> dict:
    if arguments.quick:
        return run_bench(
            users=min(arguments.users, 60),
            hubs=min(arguments.hubs, 8),
            hub_edges=min(arguments.hub_edges, 200),
            stale_rows=min(arguments.stale_rows, 40),
            executions=min(arguments.executions, 10),
            backend=arguments.backend,
            overhead_rows=200,
            overhead_batch=20,
            overhead_repeats=8,
            out_path=arguments.out,
        )
    return run_bench(
        users=arguments.users,
        hubs=arguments.hubs,
        hub_edges=arguments.hub_edges,
        stale_rows=arguments.stale_rows,
        executions=arguments.executions,
        backend=arguments.backend,
        out_path=arguments.out,
    )


if __name__ == "__main__":
    sys.exit(main())
