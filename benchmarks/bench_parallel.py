"""Intra-query parallelism benchmark: partition-parallel scans vs serial.

Thin entry point over :mod:`repro.backends.parallel_bench` (the CLI's
``repro bench-throughput --parallel N`` drives the same harness).
Persists the tracked baseline ``BENCH_parallel.json`` at the repo root:
per-query latency for one serial baseline and for 2/4/8-way partition
scans serving the identical scan/aggregate workload from the identical
mock dataset, every query bag-equivalence-gated against the reference
evaluator at every degree in both the sync and asyncio lanes, every
bench-scale parallel result checked against the serial one, plus the
gate-overhead lane (parallelism enabled but kept serial by the row
threshold) against its 5% budget.

Run directly::

    python benchmarks/bench_parallel.py [--rows N] [--quick]
    python benchmarks/bench_parallel.py --parallel 2 --parallel 4

or under pytest (asserts the correctness and overhead gates; the ≥1.5×
speedup-at-4 bar is only asserted when more than one CPU is actually
available — partition scans cannot beat serial on a single time-sliced
core, which ``meta.cpu_count`` records)::

    pytest benchmarks/bench_parallel.py --benchmark-only -s
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.backends.parallel_bench import (
    DEGREES,
    format_report,
    run_bench,
)
from repro.backends.throughput import available_cpus

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_parallel.json"


def test_bench_parallel(benchmark, report_rows, tmp_path):
    report = benchmark.pedantic(
        run_bench,
        kwargs={
            "rows_per_table": 6000,
            "repeats": 3,
            "degrees": (2, 4),
            # Keep the committed baseline intact; pytest runs are smoke.
            "out_path": tmp_path / "BENCH_parallel.json",
        },
        iterations=1,
        rounds=1,
    )
    report_rows.extend(format_report(report))
    summary = report["summary"]
    assert summary["all_results_valid"]
    assert summary["all_parallel_consistent_with_serial"]
    # Every scan/aggregate lane must actually have scattered — a bench
    # whose gate never opens measures the serial path twice.
    assert summary["all_lanes_engaged"]
    # Same 3x slack the guard-overhead CI lane allows for timing noise;
    # the strict 5% verdict is recorded in the report either way.
    assert summary["overhead_within_3x_budget"]
    if available_cpus() >= 4:
        # The acceptance bar, meaningful only with real cores under the
        # partitions: 4-way beats serial by at least 1.5x on the
        # scan-heavy headline lane.
        assert summary["speedup_at_4"] >= 1.5


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rows", type=int, default=20000, help="mock rows per table")
    parser.add_argument("--repeats", type=int, default=5, help="timing repeats")
    parser.add_argument(
        "--parallel",
        action="append",
        type=int,
        dest="degrees",
        help="partition degree to measure (repeatable; default: 2, 4, 8)",
    )
    parser.add_argument(
        "--backend", default="sqlite-memory", help="execution backend"
    )
    parser.add_argument(
        "--quick", action="store_true", help="smaller instance/repeats (CI smoke)"
    )
    parser.add_argument(
        "--out", type=Path, default=DEFAULT_OUT, help="output JSON path"
    )
    arguments = parser.parse_args(argv)
    from repro.backends import BackendUnavailable

    try:
        report = _run(arguments)
    except BackendUnavailable as error:
        print(error, file=sys.stderr)
        return 1
    print("\n".join(format_report(report)))
    print(f"wrote {arguments.out}")
    # Exit status reflects correctness and the overhead budget only —
    # speedup depends on the host's core count and must not flake CI
    # smoke runs on small machines.
    summary = report["summary"]
    failed = not (
        summary["all_results_valid"]
        and summary["all_parallel_consistent_with_serial"]
        and summary["overhead_within_3x_budget"]
    )
    return 1 if failed else 0


def _run(arguments) -> dict:
    degrees = tuple(arguments.degrees) if arguments.degrees else DEGREES
    if arguments.quick:
        degrees = tuple(degree for degree in degrees if degree <= 4) or (2,)
    return run_bench(
        rows_per_table=min(arguments.rows, 6000)
        if arguments.quick
        else arguments.rows,
        repeats=3 if arguments.quick else arguments.repeats,
        degrees=degrees,
        backend=arguments.backend,
        out_path=arguments.out,
    )


if __name__ == "__main__":
    sys.exit(main())
