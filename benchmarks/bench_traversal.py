"""Traversal benchmark: variable-length path queries, recursive vs unrolled.

The third tracked perf baseline (after ``BENCH_optimizer.json`` and
``BENCH_throughput.json``): k-hop reachability latency per backend for both
renderings of a variable-length pattern —

* the **recursive CTE** (``WITH RECURSIVE`` fixpoint, the faithful level-1
  plan, the only legal plan for open upper bounds), and
* the **bounded unrolling** (UNION of k-hop join chains, the level-2
  planner's rewrite when statistics say the chains stay small)

— plus which of the two the service's level-2 planner actually picked.

Correctness gates the timings: on a small random social graph every
``(query, rendering, backend)`` execution — and every service run at opt
levels 0/1/2 — is checked bag-equivalent against the **BFS reference
evaluator** (:func:`repro.cypher.semantics.evaluate_query`, the frontier
expansion that defines variable-length semantics).  The baseline must
record 0 equivalence failures.

Run directly::

    python benchmarks/bench_traversal.py [--rows N] [--repeats K] [--quick]

or under pytest (asserts the acceptance criteria)::

    pytest benchmarks/bench_traversal.py --benchmark-only -s
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

from repro.backends import GraphitiService, available_backends
from repro.benchmarks.universes import SOCIAL
from repro.core.transpile import transpile
from repro.cypher.parser import parse_cypher
from repro.cypher.semantics import evaluate_query as evaluate_cypher
from repro.graph.builder import GraphBuilder
from repro.relational.instance import tables_equivalent
from repro.sql.analysis import uses_recursion
from repro.sql.optimize import optimize
from repro.sql.planner import CardinalityEstimator, expand_recursions
from repro.sql.pretty import to_sql_text

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_traversal.json"

#: The traversal workload over SOCIAL's self-referential FOLLOWS edge.
#: ``hops`` is the surface bound (None = open upper bound → recursive only).
WORKLOAD: dict[str, str] = {
    "fof-2": "MATCH (a:USER)-[:FOLLOWS*1..2]->(b:USER) RETURN a.uid, b.uid",
    "fof-3": "MATCH (a:USER)-[:FOLLOWS*1..3]->(b:USER) RETURN a.uid, b.uid",
    "exact-2": "MATCH (a:USER)-[:FOLLOWS*2]->(b:USER) RETURN a.uid, b.uid",
    "exact-3": "MATCH (a:USER)-[:FOLLOWS*3]->(b:USER) RETURN a.uid, b.uid",
    "zero-two": "MATCH (a:USER)-[:FOLLOWS*0..2]->(b:USER) RETURN a.uid, b.uid",
    "undirected-2": "MATCH (a:USER)-[:FOLLOWS*1..2]-(b:USER) RETURN a.uid, b.uid",
    "reach-count": "MATCH (a:USER)-[:FOLLOWS*1..3]->(b:USER) RETURN a.uname, Count(*)",
    "star": "MATCH (a:USER)-[:FOLLOWS*]->(b:USER) RETURN a.uid, b.uid",
    "deep-star": "MATCH (a:USER)-[:FOLLOWS*2..]->(b:USER) RETURN a.uid, b.uid",
}


def social_graph(users: int, follows: int, posts: int = 0, seed: int = 7):
    """A random property graph over the SOCIAL schema (for the BFS side)."""
    rng = random.Random(seed)
    builder = GraphBuilder(SOCIAL.graph_schema)
    user_nodes = [
        builder.add_node("USER", uid=i, uname=f"u{i % 23}", age=18 + i % 50)
        for i in range(1, users + 1)
    ]
    for fid in range(1, follows + 1):
        builder.add_edge(
            "FOLLOWS", rng.choice(user_nodes), rng.choice(user_nodes), fid=fid
        )
    for pid in range(1, posts + 1):
        post = builder.add_node("POST", pid=pid, title=f"t{pid % 9}", score=pid % 13)
        builder.add_edge("WROTE", rng.choice(user_nodes), post, wrid=pid)
    return builder.build()


def plan_variants(service: GraphitiService, cypher_text: str, dialect) -> dict[str, str]:
    """Rendered SQL per plan shape: always ``recursive``, plus ``unrolled``
    when the traversal's upper bound admits it."""
    query = parse_cypher(cypher_text, service.graph_schema)
    raw = transpile(query, service.graph_schema, service.sdt)
    variants = {
        "recursive": to_sql_text(
            optimize(raw, level=1), service.sdt.schema, optimized=False, dialect=dialect
        )
    }
    # Statistics-free expansion unrolls every bounded traversal (the cost
    # guard is what the golden planner tests cover); open bounds stay
    # recursive and yield no second variant.
    expanded = expand_recursions(raw, CardinalityEstimator(service.sdt.schema, None))
    if not uses_recursion(expanded):
        variants["unrolled"] = to_sql_text(
            optimize(expanded, level=1),
            service.sdt.schema,
            optimized=False,
            dialect=dialect,
        )
    return variants


def validate(
    users: int = 40, follows: int = 70, seed: int = 7, backends: tuple[str, ...] | None = None
) -> dict:
    """Bag-equivalence of every (query, rendering, backend) and every opt
    level against the BFS reference evaluator.  Returns the failure list."""
    names = backends or available_backends()
    graph = social_graph(users, follows, posts=10, seed=seed)
    failures: list[str] = []
    checked = 0
    with GraphitiService(SOCIAL.graph_schema) as service:
        service.load_graph(graph)
        for label, text in WORKLOAD.items():
            expected = evaluate_cypher(parse_cypher(text, SOCIAL.graph_schema), graph)
            if not expected.rows:
                failures.append(f"{label}: vacuous (no rows on the validation graph)")
            for name in names:
                variants = plan_variants(service, text, service.dialect_of(name))
                for shape, sql_text in variants.items():
                    checked += 1
                    with service.pool(name).connection() as engine:
                        actual = engine.execute(sql_text)
                    if not tables_equivalent(expected, actual):
                        failures.append(f"{label}/{shape}/{name}")
                for level in (0, 1, 2):
                    checked += 1
                    if not tables_equivalent(
                        expected, service.run(text, backend=name, opt_level=level)
                    ):
                        failures.append(f"{label}/opt{level}/{name}")
    return {"checked": checked, "failures": failures}


def measure(
    rows_per_table: int = 2000,
    repeats: int = 3,
    backends: tuple[str, ...] | None = None,
    seed: int = 42,
) -> list[dict]:
    """Per-(backend, query) latency of both renderings at benchmark scale."""
    names = backends or available_backends()
    results: list[dict] = []
    with GraphitiService(SOCIAL.graph_schema) as service:
        service.load_mock(rows_per_table, seed=seed)
        for name in names:
            dialect = service.dialect_of(name)
            for label, text in WORKLOAD.items():
                variants = plan_variants(service, text, dialect)
                timings: dict[str, float] = {}
                rows = 0
                with service.pool(name).connection() as engine:
                    for shape, sql_text in variants.items():
                        timings[shape] = engine.time(sql_text, repeats=repeats)
                    rows = len(engine.execute(variants["recursive"]))
                chosen = service.prepare(text, dialect, opt_level=2).sql_ast
                recursive_ms = timings["recursive"] * 1000
                unrolled_ms = (
                    timings["unrolled"] * 1000 if "unrolled" in timings else None
                )
                results.append(
                    {
                        "backend": name,
                        "query": label,
                        "cypher": text,
                        "rows": rows,
                        "recursive_ms": round(recursive_ms, 3),
                        "unrolled_ms": (
                            round(unrolled_ms, 3) if unrolled_ms is not None else None
                        ),
                        "speedup_unrolled_vs_recursive": (
                            round(recursive_ms / max(unrolled_ms, 1e-6), 3)
                            if unrolled_ms is not None
                            else None
                        ),
                        "level2_choice": (
                            "recursive" if uses_recursion(chosen) else "unrolled"
                        ),
                    }
                )
    return results


def summarize(results: list[dict], validation: dict) -> dict:
    bounded = [r for r in results if r["unrolled_ms"] is not None]
    open_bounded = [r for r in results if r["unrolled_ms"] is None]
    return {
        "bounded_queries": len(bounded),
        "open_bound_queries": len(open_bounded),
        "unrolled_wins": sum(
            1 for r in bounded if r["unrolled_ms"] < r["recursive_ms"]
        ),
        "open_bounds_stay_recursive": all(
            r["level2_choice"] == "recursive" for r in open_bounded
        ),
        "equivalence_failures": len(validation["failures"]),
    }


def run_bench(
    rows_per_table: int = 2000,
    repeats: int = 3,
    quick: bool = False,
    out_path: Path = DEFAULT_OUT,
) -> dict:
    started = time.time()
    validation = validate(
        users=25 if quick else 40, follows=45 if quick else 70
    )
    results = measure(
        rows_per_table=rows_per_table, repeats=repeats
    )
    report = {
        "meta": {
            "generated_at": datetime.now(timezone.utc).isoformat(timespec="seconds"),
            "rows_per_table": rows_per_table,
            "repeats": repeats,
            "backends": list(available_backends()),
            "universe": SOCIAL.name,
            "elapsed_seconds": round(time.time() - started, 1),
        },
        "validation": validation,
        "summary": summarize(results, validation),
        "results": results,
    }
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    return report


def format_report(report: dict) -> list[str]:
    lines = [
        f"== traversal benchmark ({report['meta']['rows_per_table']} rows/table, "
        f"backends: {', '.join(report['meta']['backends'])}) =="
    ]
    for row in report["results"]:
        unrolled = (
            f"unrolled={row['unrolled_ms']:9.2f} ms  x{row['speedup_unrolled_vs_recursive']:<7.2f}"
            if row["unrolled_ms"] is not None
            else "unrolled=      (open bound)    "
        )
        lines.append(
            f"{row['backend']:14} {row['query']:13} "
            f"recursive={row['recursive_ms']:9.2f} ms  {unrolled} "
            f"[level2: {row['level2_choice']}]"
        )
    summary = report["summary"]
    validation = report["validation"]
    lines.append(
        f"bag-equivalence vs the BFS evaluator: {validation['checked']} checks, "
        f"{len(validation['failures'])} failures"
    )
    lines.append(
        f"unrolled wins {summary['unrolled_wins']}/{summary['bounded_queries']} "
        f"bounded traversals; open bounds stay recursive: "
        f"{summary['open_bounds_stay_recursive']}"
    )
    if validation["failures"]:
        lines.append("FAILURES: " + ", ".join(validation["failures"]))
    return lines


def test_bench_traversal(benchmark, report_rows, tmp_path):
    report = benchmark.pedantic(
        run_bench,
        kwargs={
            "rows_per_table": 800,
            "repeats": 3,
            "quick": True,
            # Keep the committed baseline intact; pytest runs are smoke.
            "out_path": tmp_path / "BENCH_traversal.json",
        },
        iterations=1,
        rounds=1,
    )
    report_rows.extend(format_report(report))
    # The acceptance bar: every rendering of every traversal is
    # bag-equivalent to the BFS evaluator, and the planner never unrolls
    # an open upper bound.
    assert not report["validation"]["failures"]
    assert report["summary"]["open_bounds_stay_recursive"]
    assert report["summary"]["bounded_queries"] > 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rows", type=int, default=2000, help="mock rows per table")
    parser.add_argument("--repeats", type=int, default=3, help="timing repeats")
    parser.add_argument(
        "--quick", action="store_true", help="smaller validation graph (CI smoke)"
    )
    parser.add_argument(
        "--out", type=Path, default=DEFAULT_OUT, help="output JSON path"
    )
    arguments = parser.parse_args(argv)
    report = run_bench(
        rows_per_table=arguments.rows,
        repeats=arguments.repeats,
        quick=arguments.quick,
        out_path=arguments.out,
    )
    print("\n".join(format_report(report)))
    print(f"wrote {arguments.out}")
    # Exit status reflects correctness only (timings are recorded, not
    # asserted — CI runners are noisy).
    return 1 if report["validation"]["failures"] else 0


if __name__ == "__main__":
    sys.exit(main())
