"""Sharding benchmark: scatter-gather QPS vs a single unsharded backend.

Thin entry point over :mod:`repro.backends.shard_bench` (the CLI's
``repro bench-throughput --shards N`` drives the same harness).  Persists
the tracked baseline ``BENCH_sharding.json`` at the repo root: QPS and
per-query p50/p95 for one unsharded baseline and for 2/4/8 hash-partitioned
shards serving the identical mixed batch (fragment-shaped scans,
aggregates, DISTINCT, ORDER BY+LIMIT, plus one non-fragmentable join that
exercises the transparent fallback), with every query bag-equivalence-gated
against the reference evaluator at every shard count in both the threaded
and asyncio scatter lanes, and every bench-scale sharded batch checked
element-wise against the single-backend batch.

Run directly::

    python benchmarks/bench_sharding.py [--rows N] [--batch B] [--quick]
    python benchmarks/bench_sharding.py --shards 2 --shards 4

or under pytest (asserts the correctness gates; the sharded ≥ single QPS
bar is only asserted when more than one CPU is actually available — shard
scatters cannot beat serial on a single time-sliced core)::

    pytest benchmarks/bench_sharding.py --benchmark-only -s
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.backends.shard_bench import (
    SHARD_COUNTS,
    format_report,
    run_bench,
)
from repro.backends.throughput import available_cpus

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_sharding.json"


def test_bench_sharding(benchmark, report_rows, tmp_path):
    report = benchmark.pedantic(
        run_bench,
        kwargs={
            "rows_per_table": 1000,
            "batch_size": 21,
            "repeats": 2,
            "shard_counts": (2, 4),
            # Keep the committed baseline intact; pytest runs are smoke.
            "out_path": tmp_path / "BENCH_sharding.json",
        },
        iterations=1,
        rounds=1,
    )
    report_rows.extend(format_report(report))
    summary = report["summary"]
    assert summary["all_results_valid"]
    assert summary["all_batches_consistent_with_single"]
    # The non-fragmentable join must have taken the fallback path — a
    # bench that never falls back is not exercising the seam.
    assert summary["fallbacks_exercised"]
    for entry in report["sharded"]:
        # Every shard participated in the scatters.
        assert all(count > 0 for count in entry["per_shard_queries"])
    if available_cpus() >= 2:
        # The acceptance bar: scatter-gather at least matches one backend.
        assert summary["sharded_ge_single"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rows", type=int, default=2000, help="mock rows per table")
    parser.add_argument("--batch", type=int, default=42, help="queries per batch")
    parser.add_argument("--repeats", type=int, default=3, help="timing repeats")
    parser.add_argument(
        "--shards",
        action="append",
        type=int,
        dest="shard_counts",
        help="shard count to measure (repeatable; default: 2, 4, 8)",
    )
    parser.add_argument(
        "--backend", default="sqlite-memory", help="execution backend"
    )
    parser.add_argument(
        "--workers", type=int, default=4, help="coordinator batch fan-out"
    )
    parser.add_argument(
        "--quick", action="store_true", help="smaller batch/repeats (CI smoke)"
    )
    parser.add_argument(
        "--out", type=Path, default=DEFAULT_OUT, help="output JSON path"
    )
    arguments = parser.parse_args(argv)
    from repro.backends import BackendUnavailable

    try:
        report = _run(arguments)
    except BackendUnavailable as error:
        print(error, file=sys.stderr)
        return 1
    print("\n".join(format_report(report)))
    print(f"wrote {arguments.out}")
    # Exit status reflects correctness only — QPS scaling depends on the
    # host's core count and must not flake CI smoke runs.
    summary = report["summary"]
    failed = not (
        summary["all_results_valid"]
        and summary["all_batches_consistent_with_single"]
    )
    return 1 if failed else 0


def _run(arguments) -> dict:
    shard_counts = (
        tuple(arguments.shard_counts) if arguments.shard_counts else SHARD_COUNTS
    )
    if arguments.quick:
        shard_counts = tuple(count for count in shard_counts if count <= 4) or (2,)
    return run_bench(
        rows_per_table=min(arguments.rows, 800) if arguments.quick else arguments.rows,
        batch_size=21 if arguments.quick else arguments.batch,
        repeats=2 if arguments.quick else arguments.repeats,
        shard_counts=shard_counts,
        backend=arguments.backend,
        workers=arguments.workers,
        out_path=arguments.out,
    )


if __name__ == "__main__":
    sys.exit(main())
