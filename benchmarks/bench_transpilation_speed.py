"""Section 6.3 (first experiment) — transpilation latency.

The paper reports that Graphiti transpiles all 410 queries with average /
median / maximum times of 6.3 / 3.0 / 180.2 milliseconds.  This bench
measures the same statistic for this implementation; the shape to check is
"milliseconds per query", i.e. transpilation is never the bottleneck.
"""

from repro.benchmarks.evaluation import transpilation_speed


def test_transpilation_speed(benchmark, report_rows):
    stats = benchmark(transpilation_speed)
    report_rows.append("== Section 6.3: transpilation latency ==")
    report_rows.append(stats.format())
    assert stats.count == 410
    assert stats.avg_ms < 50.0  # milliseconds per query, as in the paper
