"""Benchmark-harness configuration.

Each ``bench_table*.py`` regenerates one table of the paper's evaluation
section.  The measured body is wrapped in ``benchmark.pedantic``-style
single-shot calls (these are experiments, not micro-benchmarks), and the
resulting rows are printed so ``pytest benchmarks/ --benchmark-only -s``
shows the paper-style output.
"""

import pytest


def pytest_configure(config):
    config.addinivalue_line("markers", "table: paper-table reproduction benchmark")


@pytest.fixture(scope="session")
def report_rows():
    """Collects formatted rows; prints them at the end of the session."""
    collected: list[str] = []
    yield collected
    if collected:
        print("\n" + "\n".join(collected))
