"""Table 5 — transpilation results of OpenCypherTranspiler (Appendix E).

Runs the baseline transpiler model over all 410 Cypher queries and
classifies each result by differential testing against the Cypher reference
semantics.  Paper targets reproduced exactly: 284 unsupported, 2 queries
rendered as syntactically invalid SQL, 2 semantically incorrect
translations, 122 correct.
"""

from repro.benchmarks.evaluation import table5_baseline


def test_table5_baseline(benchmark, report_rows):
    rows = benchmark.pedantic(
        table5_baseline,
        kwargs={"differential_samples": 40},
        iterations=1,
        rounds=1,
    )
    report_rows.append("== Table 5: OpenCypherTranspiler baseline ==")
    for row in rows:
        report_rows.append(row.format())
    by_name = {row.dataset: row for row in rows}
    assert by_name["Total"].unsupported == 284
    assert by_name["Total"].syntax_errors == 2
    assert by_name["Total"].incorrect == 2
    assert by_name["Total"].correct == 122
    assert by_name["Mediator"].unsupported == 100
