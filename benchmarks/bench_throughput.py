"""Throughput benchmark: concurrent query serving over pooled connections.

Thin entry point over :mod:`repro.backends.throughput` (the CLI's
``repro bench-throughput`` drives the same harness).  Persists the tracked
baseline ``BENCH_throughput.json`` at the repo root: QPS serial vs 2/4/8
worker threads vs the asyncio lane (``AsyncGraphitiService`` at concurrency
2/4/8) per backend, per-lane p50/p95 tail latency, bag-equivalence
validation of every concurrent result in both lanes, the
single-transaction bulk-load win, the traced-vs-untraced tracing-overhead
lane (``tracing_overhead``: always-on instrumentation must cost ~nothing
with the no-op tracer and stay within the 5% budget with a real one), and
persistent transpilation-cache hit counters (run the script twice: the
second, cold process reports hits for every query the first one prepared).

Run directly::

    python benchmarks/bench_throughput.py [--rows N] [--batch B] [--quick]
    python benchmarks/bench_throughput.py --mode async

or under pytest (asserts the acceptance criteria; the ≥2× speedup bar is
only asserted when more than one CPU is actually available — worker
threads cannot beat serial on a single time-sliced core)::

    pytest benchmarks/bench_throughput.py --benchmark-only -s
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.backends.throughput import (
    available_cpus,
    format_report,
    run_bench,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_throughput.json"


def test_bench_throughput(benchmark, report_rows, tmp_path):
    report = benchmark.pedantic(
        run_bench,
        kwargs={
            "rows_per_table": 1000,
            "batch_size": 24,
            "repeats": 2,
            # Keep the committed baseline and the user's cache intact;
            # pytest runs are smoke.
            "out_path": tmp_path / "BENCH_throughput.json",
            "cache_path": tmp_path / "transpilations.sqlite",
        },
        iterations=1,
        rounds=1,
    )
    report_rows.extend(format_report(report))
    summary = report["summary"]
    assert summary["all_concurrent_results_valid"]
    assert summary["async_results_valid"]
    assert summary["all_batches_consistent_with_serial"]
    assert report["bulk_load"]["speedup"] > 1.0
    assert report["persistent_cache"]["cross_service_demo"]["cold_hit_every_query"]
    # The tracing-overhead lane must be measured and structurally complete.
    # The budget verdict is recorded, not asserted — one noisy CI core must
    # not flake the suite; trend-watching happens on the committed baseline.
    tracing = report["tracing_overhead"]
    assert tracing["traced_qps"] > 0 and tracing["noop_qps_first"] > 0
    assert {"traced_overhead_pct", "noop_spread_pct", "budget_pct",
            "within_budget"} <= tracing.keys()
    # The async lane must be present with QPS + tail latency per backend.
    for entry in report["results"]:
        assert entry["async"], f"async lane missing for {entry['backend']}"
        assert entry["latency"]["async"]
    if available_cpus() >= 2:
        # The acceptance bar: pooled workers at least double QPS somewhere.
        assert summary["best_speedup_at_4_workers"] >= 2.0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rows", type=int, default=2000, help="mock rows per table")
    parser.add_argument("--batch", type=int, default=40, help="queries per batch")
    parser.add_argument("--repeats", type=int, default=3, help="timing repeats")
    parser.add_argument(
        "--backend",
        action="append",
        dest="backends",
        help="backend to include (repeatable; default: every available one)",
    )
    parser.add_argument(
        "--quick", action="store_true", help="smaller batch/repeats (CI smoke)"
    )
    parser.add_argument(
        "--mode",
        choices=("threads", "async", "both"),
        default="both",
        help="measurement lanes (default both)",
    )
    parser.add_argument(
        "--out", type=Path, default=DEFAULT_OUT, help="output JSON path"
    )
    parser.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        help="persistent-cache directory (default: the user cache dir)",
    )
    arguments = parser.parse_args(argv)
    from repro.backends import BackendUnavailable

    try:
        report = _run(arguments)
    except BackendUnavailable as error:
        print(error, file=sys.stderr)
        return 1
    print("\n".join(format_report(report)))
    print(f"wrote {arguments.out}")
    # Exit status reflects correctness only — QPS scaling depends on the
    # host's core count and must not flake CI smoke runs.
    summary = report["summary"]
    failed = not (
        summary["all_concurrent_results_valid"]
        and summary["all_batches_consistent_with_serial"]
    )
    return 1 if failed else 0


def _run(arguments) -> dict:
    from repro.backends.throughput import MODES

    return run_bench(
        rows_per_table=min(arguments.rows, 800) if arguments.quick else arguments.rows,
        batch_size=24 if arguments.quick else arguments.batch,
        repeats=2 if arguments.quick else arguments.repeats,
        backends=tuple(arguments.backends) if arguments.backends else None,
        out_path=arguments.out,
        modes=MODES if arguments.mode == "both" else (arguments.mode,),
        cache_path=(
            arguments.cache_dir / "transpilations.sqlite"
            if arguments.cache_dir
            else None
        ),
    )


if __name__ == "__main__":
    sys.exit(main())
