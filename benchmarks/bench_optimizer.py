"""Optimizer benchmark: opt levels 0/1/2 across registered backends.

Times a Table-4-style workload (scans, multi-hop traversals, aggregation,
optional match, correlated EXISTS — the shapes of the paper's execution
comparison) at every optimization level on every available execution
backend, and persists the numbers to ``BENCH_optimizer.json`` at the repo
root: the tracked perf baseline for the cost-based optimizer.

Correctness gates the timings twice:

* every (query, level) result is cross-checked for bag equivalence against
  the reference evaluator on a small instance, and
* every level-2 plan of the whole 410-benchmark suite is validated
  bag-equivalent to the level-0 reference evaluation (``--quick`` samples
  this down for CI smoke runs).

Run directly::

    python benchmarks/bench_optimizer.py [--rows N] [--repeats K] [--quick]

or under pytest (asserts the acceptance criteria: level 2 beats level 1 on
multi-hop queries, nothing regresses beyond noise)::

    pytest benchmarks/bench_optimizer.py --benchmark-only -s
"""

from __future__ import annotations

import argparse
import json
import math
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

from repro.backends import GraphitiService, available_backends
from repro.benchmarks.universes import SOCIAL
from repro.relational.instance import tables_equivalent
from repro.sql.analysis import join_count

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_optimizer.json"

#: Absolute slack added to the 10% regression tolerance — sub-millisecond
#: queries bounce more than 10% from scheduler noise alone.
REGRESSION_EPSILON_MS = 0.5

#: The Table-4-style workload, over the SOCIAL universe (USER/POST with
#: FOLLOWS/WROTE/LIKES) — multi-hop traversals are where join planning acts.
WORKLOAD: dict[str, str] = {
    "scan": "MATCH (n:USER) RETURN n.uname",
    "filter": "MATCH (n:USER) WHERE n.age = 33 RETURN n.uname",
    "one-hop": "MATCH (a:USER)-[w:WROTE]->(p:POST) RETURN a.uname, p.title",
    "two-hop": (
        "MATCH (a:USER)-[f:FOLLOWS]->(b:USER)-[w:WROTE]->(p:POST) "
        "RETURN a.uname, p.title"
    ),
    "two-hop-filter": (
        "MATCH (a:USER)-[f:FOLLOWS]->(b:USER)-[w:WROTE]->(p:POST) "
        "WHERE p.score = 10 RETURN a.uname, p.title"
    ),
    "diamond": (
        "MATCH (a:USER)-[f:FOLLOWS]->(b:USER)-[w:WROTE]->(p:POST) "
        "MATCH (c:USER)-[l:LIKES]->(p:POST) RETURN a.uname, c.uname"
    ),
    "with-chain": (
        "MATCH (a:USER)-[w:WROTE]->(p:POST) WITH p "
        "MATCH (c:USER)-[l:LIKES]->(p:POST) RETURN p.title, Count(*)"
    ),
    "agg-two-hop": (
        "MATCH (a:USER)-[f:FOLLOWS]->(b:USER)-[w:WROTE]->(p:POST) "
        "RETURN b.uname, Count(*)"
    ),
    "optional": (
        "MATCH (a:USER) OPTIONAL MATCH (a:USER)-[w:WROTE]->(p:POST) "
        "RETURN a.uname, p.title"
    ),
    "exists": (
        "MATCH (a:USER) WHERE EXISTS { MATCH (a:USER)-[f:FOLLOWS]->(b:USER) } "
        "RETURN a.uname"
    ),
}

OPT_LEVELS = (0, 1, 2)


def measure(
    rows_per_table: int = 2000,
    repeats: int = 3,
    backends: tuple[str, ...] | None = None,
    check_rows: int = 20,
    seed: int = 42,
) -> list[dict]:
    """Per-(backend, query, level) timings with small-instance validation."""
    names = backends or available_backends()

    # Correctness first, at small scale (the reference evaluator
    # nested-loops, so validating at benchmark scale would dominate).
    valid: dict[tuple[str, str], bool] = {}
    with GraphitiService(SOCIAL.graph_schema) as checker:
        checker.load_mock(check_rows, seed=seed)
        for label, text in WORKLOAD.items():
            expected = checker.reference(text, opt_level=0)
            for name in names:
                ok = True
                for level in OPT_LEVELS:
                    actual = checker.run(text, backend=name, opt_level=level)
                    ok = ok and tables_equivalent(expected, actual)
                valid[(name, label)] = ok

    results: list[dict] = []
    with GraphitiService(SOCIAL.graph_schema) as service:
        service.load_mock(rows_per_table, seed=seed)
        for name in names:
            for label, text in WORKLOAD.items():
                timings = {}
                for level in OPT_LEVELS:
                    timings[level] = service.time(
                        text, backend=name, repeats=repeats, opt_level=level
                    )
                plan = service.prepare(text, opt_level=2).sql_ast
                joins = join_count(plan)
                rows = len(service.run(text, backend=name, opt_level=2))
                opt1_ms = timings[1] * 1000
                opt2_ms = timings[2] * 1000
                results.append(
                    {
                        "backend": name,
                        "query": label,
                        "cypher": text,
                        "joins": joins,
                        "multi_hop": joins >= 2,
                        "rows": rows,
                        "opt0_ms": round(timings[0] * 1000, 3),
                        "opt1_ms": round(opt1_ms, 3),
                        "opt2_ms": round(opt2_ms, 3),
                        "speedup_2_vs_1": round(opt1_ms / max(opt2_ms, 1e-6), 3),
                        "regressed": opt2_ms
                        > opt1_ms * 1.10 + REGRESSION_EPSILON_MS,
                        "valid": valid[(name, label)],
                    }
                )
    return results


def validate_suite(rows_per_table: int = 6, sample: int | None = None) -> dict:
    """Cross-validate level-2 plans against the reference evaluator over the
    whole benchmark suite (level 0 evaluated by the same evaluator is the
    ground truth; sqlite-memory execution of the level-2 SQL is checked
    too).  Returns ``{"checked": n, "failures": [...]}``."""
    from repro.benchmarks.suite import benchmark_suite

    suite = benchmark_suite()
    if sample is not None:
        step = max(len(suite) // sample, 1)
        suite = suite[::step]
    services: dict[str, GraphitiService] = {}
    failures: list[str] = []
    for benchmark in suite:
        service = services.get(benchmark.universe.name)
        if service is None:
            service = GraphitiService(benchmark.graph_schema)
            service.load_mock(rows_per_table, seed=7)
            services[benchmark.universe.name] = service
        try:
            expected = service.reference(benchmark.cypher_text, opt_level=0)
            evaluated = service.reference(benchmark.cypher_text, opt_level=2)
            executed = service.run(benchmark.cypher_text, opt_level=2)
            if not (
                tables_equivalent(expected, evaluated)
                and tables_equivalent(expected, executed)
            ):
                failures.append(benchmark.id)
        except Exception as error:  # noqa: BLE001 - report, don't crash the bench
            failures.append(f"{benchmark.id}: {type(error).__name__}: {error}")
    for service in services.values():
        service.close()
    return {"checked": len(suite), "failures": failures}


def summarize(results: list[dict]) -> dict:
    multi_hop = [r for r in results if r["multi_hop"]]
    speedups = [r["speedup_2_vs_1"] for r in multi_hop if r["speedup_2_vs_1"] > 0]
    geomean = (
        math.exp(sum(math.log(s) for s in speedups) / len(speedups))
        if speedups
        else 1.0
    )
    return {
        "multi_hop_queries": len(multi_hop),
        "multi_hop_geomean_speedup_2_vs_1": round(geomean, 3),
        "multi_hop_wins_2_vs_1": sum(
            1 for r in multi_hop if r["opt2_ms"] < r["opt1_ms"]
        ),
        "regressions": [
            f"{r['backend']}/{r['query']}" for r in results if r["regressed"]
        ],
        "all_valid": all(r["valid"] for r in results),
    }


def run_bench(
    rows_per_table: int = 2000,
    repeats: int = 3,
    quick: bool = False,
    out_path: Path = DEFAULT_OUT,
) -> dict:
    started = time.time()
    results = measure(rows_per_table=rows_per_table, repeats=repeats)
    suite_validation = validate_suite(sample=60 if quick else None)
    report = {
        "meta": {
            "generated_at": datetime.now(timezone.utc).isoformat(timespec="seconds"),
            "rows_per_table": rows_per_table,
            "repeats": repeats,
            "backends": list(available_backends()),
            "universe": SOCIAL.name,
            "elapsed_seconds": round(time.time() - started, 1),
            "regression_rule": f"opt2 > opt1 * 1.10 + {REGRESSION_EPSILON_MS} ms",
        },
        "suite_validation": suite_validation,
        "summary": summarize(results),
        "results": results,
    }
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    return report


def format_report(report: dict) -> list[str]:
    lines = [
        f"== optimizer benchmark ({report['meta']['rows_per_table']} rows/table, "
        f"backends: {', '.join(report['meta']['backends'])}) =="
    ]
    for row in report["results"]:
        marker = "*" if row["multi_hop"] else " "
        check = "ok" if row["valid"] else "MISMATCH"
        lines.append(
            f"{marker} {row['backend']:14} {row['query']:15} "
            f"opt0={row['opt0_ms']:9.2f}  opt1={row['opt1_ms']:9.2f}  "
            f"opt2={row['opt2_ms']:9.2f} ms  "
            f"x{row['speedup_2_vs_1']:<8.2f} [{check}]"
        )
    summary = report["summary"]
    validation = report["suite_validation"]
    lines.append(
        f"multi-hop geomean speedup (2 vs 1): "
        f"x{summary['multi_hop_geomean_speedup_2_vs_1']}  "
        f"(wins {summary['multi_hop_wins_2_vs_1']}/{summary['multi_hop_queries']})"
    )
    lines.append(
        f"suite validation: {validation['checked']} benchmarks, "
        f"{len(validation['failures'])} failures"
    )
    if summary["regressions"]:
        lines.append(f"regressions: {', '.join(summary['regressions'])}")
    return lines


def test_bench_optimizer(benchmark, report_rows, tmp_path):
    report = benchmark.pedantic(
        run_bench,
        kwargs={
            "rows_per_table": 1000,
            "repeats": 3,
            "quick": True,
            # Keep the committed baseline intact; pytest runs are smoke.
            "out_path": tmp_path / "BENCH_optimizer.json",
        },
        iterations=1,
        rounds=1,
    )
    report_rows.extend(format_report(report))
    summary = report["summary"]
    assert summary["all_valid"]
    assert not report["suite_validation"]["failures"]
    # The acceptance bar: cost-based planning wins on multi-hop queries and
    # regresses nothing beyond timing noise.
    assert summary["multi_hop_geomean_speedup_2_vs_1"] > 1.0
    assert not summary["regressions"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rows", type=int, default=2000, help="mock rows per table")
    parser.add_argument("--repeats", type=int, default=3, help="timing repeats")
    parser.add_argument(
        "--quick", action="store_true", help="sample the suite validation (CI smoke)"
    )
    parser.add_argument(
        "--out", type=Path, default=DEFAULT_OUT, help="output JSON path"
    )
    arguments = parser.parse_args(argv)
    report = run_bench(
        rows_per_table=arguments.rows,
        repeats=arguments.repeats,
        quick=arguments.quick,
        out_path=arguments.out,
    )
    print("\n".join(format_report(report)))
    print(f"wrote {arguments.out}")
    # Exit status reflects *correctness* only — timing regressions are
    # recorded in the JSON (and asserted by the pytest wrapper at a stable
    # scale) but must not flake CI smoke runs on noisy shared runners.
    failed = (
        not report["summary"]["all_valid"]
        or report["suite_validation"]["failures"]
    )
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
