"""Table 3 — results of full equivalence verification.

Runs the Mediator-substitute deductive verifier over all 410 benchmarks.
Shape targets from the paper: 196 supported (0/0/1/1/100/94 per category is
the paper's 1/1/0/0/100/94 modulo row order), 152 verified (~77.6% of the
supported set), 44 unknown.
"""

from repro.benchmarks.evaluation import table3_deductive


def test_table3_deductive(benchmark, report_rows):
    rows = benchmark.pedantic(table3_deductive, iterations=1, rounds=1)
    report_rows.append("== Table 3: full equivalence verification ==")
    for row in rows:
        report_rows.append(row.format())
    by_name = {row.dataset: row for row in rows}
    assert by_name["Total"].supported == 196
    assert by_name["Total"].verified == 152
    assert by_name["Total"].unknown == 44
    assert by_name["Mediator"].supported == 100
    assert by_name["Mediator"].verified == 77
    assert by_name["GPT-Translate"].supported == 94
    assert by_name["GPT-Translate"].verified == 73
    # ~80% of the supported fragment verifies, the paper's key finding.
    assert 0.7 <= by_name["Total"].verified / by_name["Total"].supported <= 0.9
