"""CI observability smoke: one traced query per backend, span-shape checked.

For every available execution backend this script runs a variable-length
traversal query under a real tracer (the ``repro explain`` path), asserts
the span tree has the expected shape — a ``query`` root with
``query.prepare`` (containing ``cache.lookup``), ``pool.checkout``, and
``execute`` stages, every span closed, every child inside its parent's
time bounds — round-trips the trace through JSON, checks the Prometheus
exposition renders, and writes the metrics snapshot artifact
(``METRICS_observability.json``) that CI uploads next to the perf
baselines.

Run::

    python scripts/observability_smoke.py [--rows N] [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.backends.registry import available_backends  # noqa: E402
from repro.backends.service import GraphitiService  # noqa: E402
from repro.benchmarks.universes import SOCIAL  # noqa: E402
from repro.observability.explain import explain_query  # noqa: E402
from repro.observability.tracing import span_from_dict  # noqa: E402

QUERY = "MATCH (a:USER)-[:FOLLOWS*1..2]->(b:USER) RETURN b.uname"


def fail(message: str) -> None:
    raise SystemExit(f"observability smoke FAILED: {message}")


def check_span_tree(trace, backend: str) -> None:
    """The structural contract of one traced execution."""
    if trace.name != "query":
        fail(f"[{backend}] root span is {trace.name!r}, expected 'query'")
    prepare = trace.find("query.prepare")
    if prepare is None:
        fail(f"[{backend}] no query.prepare span under the root")
    if prepare.find("cache.lookup") is None:
        fail(f"[{backend}] no cache.lookup span under query.prepare")
    for stage in ("pool.checkout", "execute"):
        span = trace.find(stage)
        if span is None:
            fail(f"[{backend}] no {stage} span in the trace")
        if span.attributes.get("backend") != backend:
            fail(f"[{backend}] {stage} span labelled {span.attributes!r}")
    for span in trace.walk():
        if span.end is None:
            fail(f"[{backend}] span {span.name!r} never closed")
        for child in span.children:
            # A tolerance of 0 would be wrong only if clocks misbehaved;
            # children must start and end inside their parent.
            if child.start < span.start or child.end > span.end:
                fail(
                    f"[{backend}] child {child.name!r} outside parent "
                    f"{span.name!r} bounds"
                )


def check_json_round_trip(report, backend: str) -> dict:
    document = report.to_dict()
    encoded = json.dumps(document)  # must be JSON-able as-is
    rebuilt = span_from_dict(json.loads(encoded)["trace"])
    original = [(s.name, s.attributes) for s in report.trace.walk()]
    recovered = [(s.name, s.attributes) for s in rebuilt.walk()]
    if original != recovered:
        fail(f"[{backend}] trace did not survive the JSON round trip")
    return document


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rows", type=int, default=200, help="mock rows per table")
    parser.add_argument(
        "--out",
        type=Path,
        default=REPO_ROOT / "METRICS_observability.json",
        help="metrics artifact path",
    )
    arguments = parser.parse_args(argv)
    backends = available_backends()
    if not backends:
        fail("no execution backends available")
    per_backend: dict[str, dict] = {}
    with GraphitiService(SOCIAL.graph_schema) as service:
        service.load_mock(arguments.rows)
        for name in backends:
            report = explain_query(service, QUERY, backend=name)
            check_span_tree(report.trace, name)
            document = check_json_round_trip(report, name)
            per_backend[name] = {
                "rows": report.rows,
                "span_names": [span.name for span in report.trace.walk()],
                "trace_ms": round(report.trace.duration_ms, 3),
                "plan": document["plan"],
            }
            print(
                f"{name:15} ok: {len(per_backend[name]['span_names'])} spans, "
                f"{report.rows} rows, {report.trace.duration_ms:.2f} ms"
            )
        exposition = service.metrics.to_prometheus()
        if "# TYPE repro_queries_total counter" not in exposition:
            fail("Prometheus exposition is missing the query counter")
        artifact = {
            "query": QUERY,
            "rows_per_table": arguments.rows,
            "backends": per_backend,
            "metrics": service.metrics.snapshot(),
            "prometheus_lines": len(exposition.splitlines()),
        }
    arguments.out.write_text(json.dumps(artifact, indent=2) + "\n")
    print(f"wrote {arguments.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
