#!/usr/bin/env python3
"""Aggregate every tracked ``BENCH_*.json`` into one trajectory table.

Each tracked benchmark baseline at the repo root (optimizer latency,
traversal plans, serving throughput, sharded scatter-gather, adaptive
re-planning, partition-parallel scans, ...) carries a ``meta`` block and
a scalar-friendly ``summary``.  This script prints them side by side so
one CI log line answers "what did every perf lane look like on this
run" without opening five JSON files.

Usage::

    python scripts/bench_summary.py [--dir REPO_ROOT] [ files... ]

Exits non-zero only when a named file is unreadable — a missing optional
baseline is skipped, because not every CI job regenerates every lane.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Meta keys worth one line of context per report, in display order.
META_KEYS = ("generated_at", "rows_per_table", "cpu_count", "elapsed_seconds")


def _scalar(value: object) -> str | None:
    """Render a summary value when it is table-friendly, else ``None``."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, (int, float)):
        return f"{value:g}"
    if isinstance(value, str):
        return value
    if isinstance(value, dict) and value and all(
        isinstance(v, (int, float)) and not isinstance(v, bool)
        for v in value.values()
    ):
        return ", ".join(f"{k}:{v:g}" for k, v in value.items())
    return None


def summarize_file(path: Path) -> list[str]:
    report = json.loads(path.read_text())
    meta = report.get("meta", {})
    context = "  ".join(
        f"{key}={meta[key]}" for key in META_KEYS if key in meta
    )
    lines = [f"== {path.name} ==", f"   {context}" if context else "   (no meta)"]
    summary = report.get("summary")
    if not isinstance(summary, dict):
        lines.append("   (no summary block)")
        return lines
    width = max((len(key) for key in summary), default=0)
    for key, value in summary.items():
        rendered = _scalar(value)
        if rendered is not None:
            lines.append(f"   {key:<{width}}  {rendered}")
    return lines


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "files",
        nargs="*",
        type=Path,
        help="explicit report paths (default: every BENCH_*.json in --dir)",
    )
    parser.add_argument(
        "--dir",
        type=Path,
        default=REPO_ROOT,
        help="directory to glob BENCH_*.json from (default: repo root)",
    )
    arguments = parser.parse_args(argv)
    paths = arguments.files or sorted(arguments.dir.glob("BENCH_*.json"))
    if not paths:
        print(f"no BENCH_*.json found under {arguments.dir}", file=sys.stderr)
        return 1
    status = 0
    blocks: list[str] = []
    for path in paths:
        try:
            blocks.append("\n".join(summarize_file(path)))
        except FileNotFoundError:
            if arguments.files:
                print(f"missing report: {path}", file=sys.stderr)
                status = 1
        except (OSError, json.JSONDecodeError) as error:
            print(f"unreadable report {path}: {error}", file=sys.stderr)
            status = 1
    print(f"=== benchmark trajectory ({len(blocks)} tracked lane(s)) ===")
    print("\n\n".join(blocks))
    return status


if __name__ == "__main__":
    sys.exit(main())
